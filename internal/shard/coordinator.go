package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ucgraph/internal/conn"
	"ucgraph/internal/graph"
	"ucgraph/internal/influence"
	"ucgraph/internal/knn"
	"ucgraph/internal/metrics"
	"ucgraph/internal/obs"
	"ucgraph/internal/rng"
	"ucgraph/internal/worldstore"
)

// CoordinatorOptions configures a Coordinator. The zero value selects the
// documented defaults.
type CoordinatorOptions struct {
	// Client is the HTTP client used for worker pings and membership
	// probes (default: a dedicated client with no global timeout). Tally
	// traffic does not use it — tallies ride the persistent v2 streams.
	Client *http.Client
	// Retries is how many extra scatter rounds a query may spend
	// re-scattering blocks whose worker failed (default 2). Re-scattered
	// blocks move to a different live worker when one exists; a restarted
	// worker answers for itself again once pings mark it up.
	Retries int
	// RequestTimeout caps one worker request (default 60s), layered under
	// the query context, so a hung worker turns into a retriable failure
	// instead of stalling the whole query until its deadline.
	RequestTimeout time.Duration
	// HedgeDelay, when positive, arms a hedge against straggler workers:
	// if a scatter group has not answered after this delay, the same
	// request is raced against a second live worker and the first answer
	// wins. The loser's answer is a suppressed duplicate — never a
	// failure, and never double-merged (the group's win flag admits
	// exactly one answer). Zero disables hedging.
	HedgeDelay time.Duration
	// Parallelism is handed to the local fallback estimator (<= 0 selects
	// GOMAXPROCS). Results do not depend on it.
	Parallelism int

	// BreakerThreshold is the consecutive tally-failure count that trips a
	// worker's circuit breaker (default 3). While open, the worker gets no
	// new block assignments, hedges or audits; the breaker half-opens when
	// the backoff expires (or immediately when no alternative worker is
	// available — a one-worker fleet never deadlocks on its own breaker).
	// A successful tally or ping closes it.
	BreakerThreshold int
	// BreakerBackoff is the base open interval (default 100ms). Each
	// further consecutive failure doubles it, up to BreakerMaxBackoff, and
	// a deterministic jitter in [0, backoff/2] — seeded from the
	// coordinator seed and the worker address, never the clock — spreads
	// reconnect storms without breaking replayability.
	BreakerBackoff time.Duration
	// BreakerMaxBackoff caps the exponential backoff (default 30s).
	BreakerMaxBackoff time.Duration
	// RetryBudget caps the total block re-scatters a single query may
	// spend across all its retry rounds (default 4096): a query against a
	// melting fleet fails crisply instead of grinding through rounds of
	// full-rate retries.
	RetryBudget int
	// QuarantineTrips and QuarantineWindow define flap quarantine: a
	// worker whose breaker trips QuarantineTrips times within
	// QuarantineWindow (defaults 8 trips in 1 minute) is quarantined —
	// taken out of assignment until an operator re-adds it via AddWorker
	// (POST /v1/shards). QuarantineTrips <= 0 disables flap quarantine;
	// audit divergence quarantines unconditionally.
	QuarantineTrips  int
	QuarantineWindow time.Duration
	// AuditFraction, in [0, 1], samples completed scatter groups for an
	// audit: the group's ranges are re-executed on a second worker and the
	// raw tallies compared byte-for-byte; on divergence the coordinator
	// recomputes locally as referee, merges the verified tallies, and
	// quarantines whichever worker diverged. Selection is seeded and
	// deterministic. 0 (the default) disables auditing.
	AuditFraction float64

	// OnWorkerRTT, when non-nil, receives the round-trip time of every
	// successful worker tally attempt (wins, duplicates and audits alike)
	// — the feed for the daemon's per-worker RTT histograms. Called from
	// scatter goroutines; must be cheap and safe for concurrent use. Pure
	// observation: it never affects scheduling or results.
	OnWorkerRTT func(addr string, rtt time.Duration)
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Retries <= 0 {
		o.Retries = 2
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerBackoff <= 0 {
		o.BreakerBackoff = 100 * time.Millisecond
	}
	if o.BreakerMaxBackoff <= 0 {
		o.BreakerMaxBackoff = 30 * time.Second
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 4096
	}
	if o.QuarantineTrips == 0 {
		o.QuarantineTrips = 8
	}
	if o.QuarantineWindow <= 0 {
		o.QuarantineWindow = time.Minute
	}
	return o
}

// WorkerStats is the health snapshot of one worker, as surfaced by the
// daemon's /statsz endpoint.
type WorkerStats struct {
	// Addr is the worker's base URL.
	Addr string
	// State is the membership state: "up", "down" (pings failing; blocks
	// re-striped to the survivors), "quarantined" (flapping or divergent;
	// sidelined until an operator re-adds it) or "removed"
	// (administratively left).
	State string
	// Requests and Failures count tally/ping round-trips issued and
	// failed. Duplicates counts hedged answers that lost the race and
	// were suppressed — they are deliberately not failures.
	Requests, Failures, Duplicates uint64
	// RangesServed and WorldsServed count the world ranges (and worlds)
	// whose tallies this worker successfully returned.
	RangesServed, WorldsServed uint64
	// BreakerTrips counts circuit-breaker trips; BreakerOpen reports
	// whether the breaker is currently open (the worker is being backed
	// off, not assigned new blocks).
	BreakerTrips uint64
	BreakerOpen  bool
	// IntegrityRejects counts responses from this worker rejected for a
	// CRC32-C mismatch before decoding (the range was re-scattered).
	IntegrityRejects uint64
	// LastRTT is the round-trip time of the last successful request;
	// LastOK is when it completed. LastErr is the most recent failure
	// (empty if none).
	LastRTT time.Duration
	LastOK  time.Time
	LastErr string
}

// workerClient is the coordinator-side handle of one worker: a JSON
// client for pings plus the persistent v2 stream for tallies.
type workerClient struct {
	base      string // normalized base URL, no trailing slash
	client    *http.Client
	stream    *streamClient
	streamErr error // base URL unusable for streaming (reported per call)

	mu    sync.Mutex
	stats WorkerStats
}

// normalizeAddr turns "host:port" or a full URL into a base URL with no
// trailing slash.
func normalizeAddr(addr string) string {
	base := strings.TrimRight(strings.TrimSpace(addr), "/")
	if base != "" && !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return base
}

// newWorkerClient normalizes addr ("host:port" or a full URL) into a
// client.
func newWorkerClient(addr string, client *http.Client) *workerClient {
	base := normalizeAddr(addr)
	wc := &workerClient{base: base, client: client, stats: WorkerStats{Addr: base}}
	wc.stream, wc.streamErr = newStreamClient(base)
	return wc
}

func (wc *workerClient) noteSuccess(rtt time.Duration, ranges, worlds int) {
	wc.mu.Lock()
	wc.stats.Requests++
	wc.stats.RangesServed += uint64(ranges)
	wc.stats.WorldsServed += uint64(worlds)
	wc.stats.LastRTT = rtt
	wc.stats.LastOK = time.Now()
	wc.stats.LastErr = ""
	wc.mu.Unlock()
}

func (wc *workerClient) noteFailure(err error) {
	wc.mu.Lock()
	wc.stats.Requests++
	wc.stats.Failures++
	wc.stats.LastErr = err.Error()
	wc.mu.Unlock()
}

// noteDuplicate records a suppressed hedged duplicate: a request that
// completed fine but lost the race. It counts as a request served, not as
// a failure — the /statsz failure counter is reserved for actual faults.
func (wc *workerClient) noteDuplicate() {
	wc.mu.Lock()
	wc.stats.Requests++
	wc.stats.Duplicates++
	wc.mu.Unlock()
}

// noteIntegrityReject annotates the current failure as a CRC rejection
// (noteFailure separately counts the request and failure).
func (wc *workerClient) noteIntegrityReject() {
	wc.mu.Lock()
	wc.stats.IntegrityRejects++
	wc.mu.Unlock()
}

func (wc *workerClient) snapshot() WorkerStats {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.stats
}

// do posts one JSON request and decodes the JSON response into out (v1
// endpoints: ping, and the frozen tally endpoint used by tests).
func (wc *workerClient) do(ctx context.Context, path string, in, out any) error {
	var body io.Reader
	method := http.MethodGet
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
		method = http.MethodPost
	}
	req, err := http.NewRequestWithContext(ctx, method, wc.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := wc.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return fmt.Errorf("%s%s: %s", wc.base, path, e.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// call runs one tally request over the worker's stream, bounded by the
// per-attempt timeout, and cross-checks the answered world count. sp,
// when non-nil, supplies the trace ref that rides the REQ frame
// (flagTrace) and receives no annotation itself — the worker's
// annotation comes back as the second result for the caller to attach.
// It records no stats — the scatter attempt that issued it decides
// whether the outcome was a win, a suppressed duplicate or a failure.
func (wc *workerClient) call(ctx context.Context, timeout time.Duration, req *TallyRequest, sp *obs.Span) (*TallyResponse, *workerAnnot, error) {
	if wc.streamErr != nil {
		return nil, nil, wc.streamErr
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	worlds := 0
	for _, rg := range req.Ranges {
		worlds += rg.Worlds()
	}
	var ref *traceRef
	if tid, sid := sp.WireIDs(); tid != 0 {
		ref = &traceRef{TraceID: tid, SpanID: sid}
	}
	resp, _, annot, err := wc.stream.call(ctx, req, ref)
	if err != nil {
		return nil, nil, err
	}
	if resp.Worlds != worlds {
		return nil, nil, fmt.Errorf("%s: tallied %d worlds, asked for %d", wc.base, resp.Worlds, worlds)
	}
	return resp, annot, nil
}

// ---- fleet: elastic membership -------------------------------------------

type memberState int32

const (
	memberUp memberState = iota
	memberDown
	memberRemoved
	memberQuarantined
)

func (s memberState) String() string {
	switch s {
	case memberUp:
		return "up"
	case memberDown:
		return "down"
	case memberQuarantined:
		return "quarantined"
	default:
		return "removed"
	}
}

// member is one fleet slot. Slots are append-only: a removed worker keeps
// its slot (so owner bookkeeping stays valid) and re-adding the same
// address revives it.
type member struct {
	wc *workerClient
	// jitterKey is a stable per-address hash mixed into the backoff
	// jitter, so a fleet of coordinators restarted together does not
	// reopen every breaker in lockstep.
	jitterKey uint64
	state     atomic.Int32

	// Circuit-breaker state. Failures here are tally failures (the
	// traffic-bearing path); the ping loop manages up/down separately, and
	// a successful ping also closes the breaker (recovery evidence).
	bmu         sync.Mutex
	consecFails int
	trips       uint64
	openUntil   time.Time
	tripTimes   []time.Time // recent trips inside the quarantine window
}

func (m *member) up() bool { return memberState(m.state.Load()) == memberUp }

// breakerOpen reports whether the breaker holds the member out of
// assignment at now.
func (m *member) breakerOpen(now time.Time) bool {
	m.bmu.Lock()
	defer m.bmu.Unlock()
	return now.Before(m.openUntil)
}

// breakerReset closes the breaker on success (a served tally or a passing
// ping).
func (m *member) breakerReset() {
	m.bmu.Lock()
	m.consecFails = 0
	m.openUntil = time.Time{}
	m.bmu.Unlock()
}

// recordFailure registers one tally failure against the breaker. At
// BreakerThreshold consecutive failures it trips: the member is held out
// for an exponentially growing backoff (doubling per further consecutive
// failure, capped at BreakerMaxBackoff) plus a deterministic jitter in
// [0, backoff/2] seeded from (seed, address, trip count) — reproducible
// under a chaos seed, yet de-synchronized across workers. Reports whether
// this failure tripped the breaker, and whether the trip rate inside
// QuarantineWindow crossed the flap-quarantine bar.
func (m *member) recordFailure(opts *CoordinatorOptions, seed uint64) (tripped, quarantine bool) {
	now := time.Now()
	m.bmu.Lock()
	defer m.bmu.Unlock()
	m.consecFails++
	if m.consecFails < opts.BreakerThreshold {
		return false, false
	}
	m.trips++
	exp := m.consecFails - opts.BreakerThreshold
	if exp > 20 {
		exp = 20
	}
	backoff := opts.BreakerBackoff << exp
	if backoff <= 0 || backoff > opts.BreakerMaxBackoff {
		backoff = opts.BreakerMaxBackoff
	}
	jitter := time.Duration(rng.Mix64(seed^m.jitterKey^m.trips) % uint64(backoff/2+1))
	m.openUntil = now.Add(backoff + jitter)
	m.tripTimes = append(m.tripTimes, now)
	cut := now.Add(-opts.QuarantineWindow)
	for len(m.tripTimes) > 0 && m.tripTimes[0].Before(cut) {
		m.tripTimes = m.tripTimes[1:]
	}
	return true, opts.QuarantineTrips > 0 && len(m.tripTimes) >= opts.QuarantineTrips
}

// breakerSnapshot reports the trip count and open state for /statsz.
func (m *member) breakerSnapshot() (trips uint64, open bool) {
	now := time.Now()
	m.bmu.Lock()
	defer m.bmu.Unlock()
	return m.trips, now.Before(m.openUntil)
}

// fleet is the membership table shared by a Coordinator and all its
// forks: the member slots, the sticky block-ownership map, and the
// fabric-level counters. Ownership is sticky on purpose — a block keeps
// its worker (whose tally cache is warm for it) until that worker goes
// down or leaves, and only then is it re-striped onto the survivors.
// Assignment never affects results, only which worker computes which
// integer sums.
type fleet struct {
	client *http.Client

	mu      sync.Mutex
	members []*member
	owners  map[int]int // block index → member slot

	hedges           atomic.Uint64
	duplicates       atomic.Uint64
	rescatters       atomic.Uint64
	breakerTrips     atomic.Uint64
	quarantines      atomic.Uint64
	integrityRejects atomic.Uint64
	audits           atomic.Uint64
	auditDivergences atomic.Uint64
}

// addrHash is the stable per-address key of the breaker jitter (FNV-1a).
func addrHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func newFleet(addrs []string, client *http.Client) *fleet {
	f := &fleet{client: client, owners: make(map[int]int)}
	for _, addr := range addrs {
		if strings.TrimSpace(addr) != "" {
			f.add(addr)
		}
	}
	return f
}

// add registers (or revives) the worker at addr and returns its
// normalized base URL.
func (f *fleet) add(addr string) string {
	base := normalizeAddr(addr)
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range f.members {
		if m.wc.base == base {
			// Revival is also the operator's quarantine-clear: AddWorker on
			// a quarantined or removed address returns it to service with a
			// closed breaker.
			m.state.Store(int32(memberUp))
			m.breakerReset()
			return base
		}
	}
	m := &member{wc: newWorkerClient(base, f.client), jitterKey: addrHash(base)}
	m.state.Store(int32(memberUp))
	f.members = append(f.members, m)
	return base
}

// remove marks the worker at addr as removed and closes its stream;
// reports whether it was a member.
func (f *fleet) remove(addr string) bool {
	base := normalizeAddr(addr)
	f.mu.Lock()
	var gone *member
	for _, m := range f.members {
		if m.wc.base == base && memberState(m.state.Load()) != memberRemoved {
			m.state.Store(int32(memberRemoved))
			gone = m
			break
		}
	}
	f.mu.Unlock()
	if gone != nil && gone.wc.stream != nil {
		gone.wc.stream.close()
	}
	return gone != nil
}

// active returns the non-removed members (up or down).
func (f *fleet) active() []*member {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*member, 0, len(f.members))
	for _, m := range f.members {
		if memberState(m.state.Load()) != memberRemoved {
			out = append(out, m)
		}
	}
	return out
}

func (f *fleet) liveSlotsLocked() []int {
	var live []int
	for s, m := range f.members {
		if m.up() {
			live = append(live, s)
		}
	}
	return live
}

// availableSlotsLocked is liveSlotsLocked minus breaker-open members: the
// slots a new block may be assigned to at full confidence.
func (f *fleet) availableSlotsLocked(now time.Time) []int {
	var avail []int
	for s, m := range f.members {
		if m.up() && !m.breakerOpen(now) {
			avail = append(avail, s)
		}
	}
	return avail
}

// assign maps each block index to its owning slot, keeping live sticky
// owners and striping unowned blocks across the live members
// (live[bi % len(live)] — with every member live and no history, exactly
// the round-robin striping of Partition). exclude[bi] names a slot the
// block must avoid when any alternative exists: retry rounds use it to
// move a failed worker's blocks. Breaker-open members are skipped — their
// blocks re-stripe onto healthy workers for the duration of the backoff —
// unless every live member is open, in which case all of them are forced
// half-open (a fleet must never starve itself on its own breakers; the
// next attempt is the probe). Returns slot → ascending block indices.
func (f *fleet) assign(bis []int, exclude map[int]int, rot int) (map[int][]int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := time.Now()
	live := f.availableSlotsLocked(now)
	forced := len(live) == 0
	if forced {
		live = f.liveSlotsLocked()
	}
	if len(live) == 0 {
		return nil, errors.New("shard: no live workers")
	}
	usable := func(s int) bool {
		m := f.members[s]
		return m.up() && (forced || !m.breakerOpen(now))
	}
	out := make(map[int][]int)
	for _, bi := range bis {
		if s, owned := f.owners[bi]; owned && usable(s) {
			if ex, excluded := exclude[bi]; !excluded || ex != s || len(live) == 1 {
				out[s] = append(out[s], bi)
				continue
			}
		}
		pick := live[(bi+rot)%len(live)]
		if ex, excluded := exclude[bi]; excluded && pick == ex && len(live) > 1 {
			pick = live[(bi+rot+1)%len(live)]
		}
		f.owners[bi] = pick
		out[pick] = append(out[pick], bi)
	}
	return out, nil
}

// hedgeTarget picks a live member other than slot (cyclically next), or
// nil when the fleet has no alternative to hedge against. Breaker-open
// members are never hedged against — a hedge exists to beat a straggler,
// not to probe a failing worker.
func (f *fleet) hedgeTarget(slot int) *member {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := time.Now()
	n := len(f.members)
	for i := 1; i <= n; i++ {
		m := f.members[(slot+i)%n]
		if m.up() && !m.breakerOpen(now) && m != f.members[slot%n] {
			return m
		}
	}
	return nil
}

func (f *fleet) member(slot int) *member {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.members[slot]
}

func (f *fleet) close() {
	for _, m := range f.active() {
		if m.wc.stream != nil {
			m.wc.stream.close()
		}
	}
}

// FabricStats are coordinator-level counters of the scatter fabric,
// shared across forks.
type FabricStats struct {
	// Hedges counts hedge attempts launched against stragglers.
	Hedges uint64
	// Duplicates counts hedged answers that lost the race and were
	// suppressed before merging (exactly-once bookkeeping).
	Duplicates uint64
	// Rescatters counts world blocks repooled onto another worker after
	// a failed attempt.
	Rescatters uint64
	// BreakerTrips counts circuit-breaker trips across the fleet.
	BreakerTrips uint64
	// Quarantines counts workers moved into the quarantined state
	// (flapping past the trip bar, or diverging under audit).
	Quarantines uint64
	// IntegrityRejects counts frames rejected for a CRC32-C mismatch —
	// every one was re-scattered, never merged.
	IntegrityRejects uint64
	// Audits counts sampled audit re-executions; AuditDivergences counts
	// the ones whose byte-for-byte tally comparison failed (each triggers
	// a local referee recompute and a quarantine).
	Audits           uint64
	AuditDivergences uint64
}

// coTally is one cached center tally of the coordinator: per-node counts
// over the first rDone worlds (the same shape conn.MonteCarlo caches, so
// progressive sampling schedules extend instead of recomputing).
type coTally struct {
	mu     sync.Mutex
	counts []int32
	rDone  int
}

type coKey struct {
	c     graph.NodeID
	depth int
}

// Coordinator implements the estimator surface over a fleet of shard
// workers: every query becomes one or more scatter rounds of disjoint
// block-aligned world ranges, and the gathered integer tallies are summed
// into exactly the counts a single-process run over the same stream
// produces — so estimates are bit-identical to conn.MonteCarlo (and the
// knn / influence / metrics entry points) for every worker count, every
// partitioning, every membership change and every hedge outcome, and
// clustering drivers consume a Coordinator wherever they would a
// conn.MonteCarlo (it implements conn.ContextOracle).
//
// Failure handling never trades accuracy: a failed worker's blocks are
// re-scattered onto other live workers, a hedged straggler's duplicate
// answer is suppressed by the group's win flag, and each block is merged
// exactly once (scatter audits the merged world count) or the whole call
// errors with no estimate. The fleet is elastic — AddWorker / RemoveWorker
// and the ping refresher change membership between (and during) queries
// with no restart; with no live workers configured the Coordinator
// degrades to the in-process estimator over the shared world store of the
// same (graph, seed).
//
// Like the estimator it mirrors, a Coordinator caches per-(center, depth)
// tallies and extends them when later queries raise the sample size, so a
// progressive clustering schedule scatters only the new worlds of each
// phase. Safe for concurrent use.
type Coordinator struct {
	name  string
	g     *graph.Uncertain
	seed  uint64
	store *worldstore.Store
	local *conn.MonteCarlo
	fleet *fleet
	opts  CoordinatorOptions

	mu        sync.Mutex
	cache     map[coKey]*coTally
	order     []coKey
	cacheHead int
	maxCache  int
}

var _ conn.ContextOracle = (*Coordinator)(nil)

// NewCoordinator builds a coordinator for the graph served under name by
// the given workers. g and seed must match what the workers were started
// with (Ping verifies). With no workers, every query runs on the local
// in-process estimator instead — the single-binary degenerate deployment.
func NewCoordinator(name string, g *graph.Uncertain, seed uint64, workerAddrs []string, opts CoordinatorOptions) *Coordinator {
	opts = opts.withDefaults()
	local := conn.NewMonteCarlo(g, seed)
	local.SetParallelism(opts.Parallelism)
	n := g.NumNodes()
	maxCache := 64 << 20 / (4 * n)
	if maxCache < 64 {
		maxCache = 64
	}
	return &Coordinator{
		name:     name,
		g:        g,
		seed:     seed,
		store:    local.Store(),
		local:    local,
		fleet:    newFleet(workerAddrs, opts.Client),
		opts:     opts,
		cache:    make(map[coKey]*coTally),
		maxCache: maxCache,
	}
}

// Fork returns a coordinator sharing this one's fleet (workers, membership
// and health stats) but with a fresh, private tally cache — the sharded
// analogue of building a private conn.MonteCarlo for one clustering run,
// so the run's result depends only on (graph, seed, request), never on
// which centers other traffic warmed first.
func (c *Coordinator) Fork() *Coordinator {
	fork := &Coordinator{
		name:     c.name,
		g:        c.g,
		seed:     c.seed,
		store:    c.store,
		local:    conn.NewMonteCarlo(c.g, c.seed),
		fleet:    c.fleet,
		opts:     c.opts,
		cache:    make(map[coKey]*coTally),
		maxCache: c.maxCache,
	}
	fork.local.SetParallelism(c.opts.Parallelism)
	return fork
}

// Sharded reports whether the coordinator has (non-removed) workers; false
// means every query runs locally.
func (c *Coordinator) Sharded() bool { return len(c.fleet.active()) > 0 }

// NumNodes implements conn.Oracle.
func (c *Coordinator) NumNodes() int { return c.g.NumNodes() }

// Graph returns the underlying graph.
func (c *Coordinator) Graph() *graph.Uncertain { return c.g }

// Store exposes the local shared world store (used by consumers that stay
// local, and for block-size agreement with the workers).
func (c *Coordinator) Store() *worldstore.Store { return c.store }

// Workers returns the current (non-removed) worker base URLs.
func (c *Coordinator) Workers() []string {
	members := c.fleet.active()
	out := make([]string, len(members))
	for i, m := range members {
		out[i] = m.wc.base
	}
	return out
}

// WorkerStats returns a health snapshot per worker. Unlike Workers it
// includes removed members (state "removed"), so operators watching
// /statsz during a membership change see the departure rather than a
// silently shrinking list.
func (c *Coordinator) WorkerStats() []WorkerStats {
	c.fleet.mu.Lock()
	members := append([]*member(nil), c.fleet.members...)
	c.fleet.mu.Unlock()
	out := make([]WorkerStats, len(members))
	for i, m := range members {
		out[i] = m.wc.snapshot()
		out[i].State = memberState(m.state.Load()).String()
		out[i].BreakerTrips, out[i].BreakerOpen = m.breakerSnapshot()
	}
	return out
}

// FabricStats returns the fabric-level hedge/duplicate/rescatter counters.
func (c *Coordinator) FabricStats() FabricStats {
	return FabricStats{
		Hedges:           c.fleet.hedges.Load(),
		Duplicates:       c.fleet.duplicates.Load(),
		Rescatters:       c.fleet.rescatters.Load(),
		BreakerTrips:     c.fleet.breakerTrips.Load(),
		Quarantines:      c.fleet.quarantines.Load(),
		IntegrityRejects: c.fleet.integrityRejects.Load(),
		Audits:           c.fleet.audits.Load(),
		AuditDivergences: c.fleet.auditDivergences.Load(),
	}
}

// recordFault feeds one genuine tally failure into the worker's breaker
// and the fleet counters, quarantining a flapper when its trip rate
// crosses the bar. Integrity failures are additionally counted — they are
// the wire's bit-rot signal and operators alert on them separately.
func (c *Coordinator) recordFault(m *member, err error) {
	if errors.Is(err, errIntegrity) {
		c.fleet.integrityRejects.Add(1)
		m.wc.noteIntegrityReject()
	}
	tripped, quarantine := m.recordFailure(&c.opts, c.seed)
	if tripped {
		c.fleet.breakerTrips.Add(1)
	}
	if quarantine {
		c.quarantineMember(m)
	}
}

// quarantineMember sidelines a worker until an operator re-adds it:
// quarantined members receive no assignments, hedges or audits, and the
// ping loop does not revive them. Removed members stay removed.
func (c *Coordinator) quarantineMember(m *member) {
	if m.state.CompareAndSwap(int32(memberUp), int32(memberQuarantined)) ||
		m.state.CompareAndSwap(int32(memberDown), int32(memberQuarantined)) {
		c.fleet.quarantines.Add(1)
		if m.wc.stream != nil {
			m.wc.stream.close()
		}
	}
}

// auditPick decides — deterministically, from the coordinator seed and
// the group's leading world index — whether a completed scatter group is
// sampled for an audit re-execution. Clock- and schedule-free selection
// keeps chaos runs replayable: the same seed audits the same groups.
func (c *Coordinator) auditPick(g *scatterGroup) bool {
	if len(g.ranges) == 0 {
		return false
	}
	h := rng.Mix64(c.seed ^ uint64(g.ranges[0].Lo)*0x9e3779b97f4a7c15)
	return float64(h>>11)/(1<<53) < c.opts.AuditFraction
}

// auditGroup re-executes a sampled group's ranges on a second worker and
// compares the raw tallies byte-for-byte (via the canonical v2 response
// encoding — the same bytes that cross the wire). Agreement returns nil
// and the original answer is merged. On divergence the coordinator
// recomputes the ranges locally as referee, quarantines whichever
// worker(s) disagree with the referee, and returns the verified tallies
// for merging — a diverging worker's answer never reaches an estimate.
// Any audit infrastructure failure (no second worker, auditor error)
// also returns nil: audits must never fail a query that already has a
// well-formed answer.
func (c *Coordinator) auditGroup(ctx context.Context, base *TallyRequest, g *scatterGroup, resp *TallyResponse) *TallyResponse {
	auditor := c.fleet.hedgeTarget(g.ownerSlot)
	if auditor == nil {
		return nil // one-worker fleet: nothing independent to compare
	}
	c.fleet.audits.Add(1)
	sp := obs.SpanFromContext(ctx).StartChild("audit")
	defer sp.End()
	sp.Set("owner", g.owner.wc.base)
	sp.Set("auditor", auditor.wc.base)
	sp.Set("worlds", int64(g.worlds))
	wreq := *base
	wreq.Ranges = g.ranges
	aresp, _, err := auditor.wc.call(ctx, c.opts.RequestTimeout, &wreq, sp)
	if err == nil {
		if cerr := c.checkResponse(&wreq, aresp); cerr != nil {
			err = fmt.Errorf("%s: malformed audit response: %w", auditor.wc.base, cerr)
		}
	}
	if err != nil {
		sp.Set("outcome", "auditor_failed")
		sp.Set("error", err.Error())
		auditor.wc.noteFailure(err)
		c.recordFault(auditor, err)
		return nil
	}
	canon := func(r *TallyResponse) []byte { return encodeResponseFrame(0, wreq.Kind, false, r) }
	ownerBytes, auditBytes := canon(resp), canon(aresp)
	if bytes.Equal(ownerBytes, auditBytes) {
		sp.Set("outcome", "agreement")
		return nil // independent agreement; merge the original
	}
	sp.Set("outcome", "divergence")
	c.fleet.auditDivergences.Add(1)
	// Referee: recompute the disputed ranges locally from the shared
	// (seed, index) world definition — the ground truth both workers
	// were supposed to tally.
	ref := &TallyResponse{}
	for _, rg := range g.ranges {
		rt, rerr := rangeTally(ctx, c.g, c.store, &wreq, rg)
		if rerr != nil {
			return nil // referee interrupted (ctx done); keep the original
		}
		mergeTally(ref, rt, wreq.Kind)
	}
	refBytes := canon(ref)
	if !bytes.Equal(ownerBytes, refBytes) {
		c.quarantineMember(g.owner)
	}
	if !bytes.Equal(auditBytes, refBytes) {
		c.quarantineMember(auditor)
	}
	return ref
}

// AddWorker registers (or revives) a worker — the join half of elastic
// membership. The new member starts as "up" and receives unowned blocks
// on the very next scatter round; already-owned blocks stay with their
// sticky owners, so a join re-stripes nothing that is warm elsewhere.
// Returns the normalized base URL.
func (c *Coordinator) AddWorker(addr string) string { return c.fleet.add(addr) }

// RemoveWorker administratively removes a worker (the leave half). Its
// blocks become unowned and re-stripe onto the survivors on the next
// scatter round; in-flight requests against it fall to the retry rounds.
// Reports whether addr was a member.
func (c *Coordinator) RemoveWorker(addr string) bool { return c.fleet.remove(addr) }

// Close tears down the persistent worker streams. The coordinator remains
// usable — streams re-dial on the next query — so Close is for orderly
// shutdown.
func (c *Coordinator) Close() { c.fleet.close() }

// Ping verifies every current worker is reachable and serves the
// coordinator's graph with matching identity (nodes, edges, seed) — the
// readiness probe of the sharded deployment. Workers are pinged
// concurrently, so the probe costs one round-trip of the slowest worker,
// not the sum. Each worker's membership state is refreshed from the
// outcome (up on success, down on failure). It returns a joined error of
// the unreachable or mismatched workers; nil means all workers agree on
// the world stream.
func (c *Coordinator) Ping(ctx context.Context) error {
	members := c.fleet.active()
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			errs[i] = c.pingMember(ctx, m)
		}(i, m)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// RefreshMembership is Ping under its membership-maintenance name: the
// periodic ping loop (StartPings) and the /v1/shards endpoint call it to
// move flapping workers between "up" and "down" with no restart.
func (c *Coordinator) RefreshMembership(ctx context.Context) error { return c.Ping(ctx) }

// StartPings runs RefreshMembership every interval until the returned stop
// function is called. Each probe is bounded by RequestTimeout.
func (c *Coordinator) StartPings(interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), c.opts.RequestTimeout)
				_ = c.RefreshMembership(ctx)
				cancel()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// pingMember pings one worker, verifies its graph identity, records the
// outcome in its health stats and refreshes its membership state.
func (c *Coordinator) pingMember(ctx context.Context, m *member) error {
	wc := m.wc
	var resp PingResponse
	t0 := time.Now()
	werr := wc.do(ctx, PathPing, nil, &resp)
	if werr == nil {
		found := false
		for _, pg := range resp.Graphs {
			if pg.Name != c.name {
				continue
			}
			found = true
			if pg.Nodes != c.g.NumNodes() || pg.Edges != c.g.NumEdges() || pg.Seed != c.seed {
				werr = fmt.Errorf(
					"%s: graph %q mismatch: worker has %d nodes / %d edges / seed %d, coordinator %d / %d / %d",
					wc.base, c.name, pg.Nodes, pg.Edges, pg.Seed,
					c.g.NumNodes(), c.g.NumEdges(), c.seed)
			}
		}
		if !found && werr == nil {
			werr = fmt.Errorf("%s: worker does not serve graph %q", wc.base, c.name)
		}
	}
	// Quarantine is sticky against pings on purpose: a flapping worker
	// passes plenty of pings between its failures, and a divergent worker
	// pings perfectly — only the operator (AddWorker) clears it.
	if st := memberState(m.state.Load()); st != memberRemoved && st != memberQuarantined {
		if werr != nil {
			m.state.Store(int32(memberDown))
		} else {
			m.state.Store(int32(memberUp))
		}
	}
	if werr != nil {
		wc.noteFailure(werr)
		return werr
	}
	wc.noteSuccess(time.Since(t0), 0, 0)
	m.breakerReset() // a passing ping is recovery evidence: close the breaker
	return nil
}

// checkResponse validates the shape of a worker's tally payload against
// the request, so a version-skewed worker — or one restarted with a
// different graph under the same name — surfaces as a retriable worker
// failure instead of an index panic inside the merge.
func (c *Coordinator) checkResponse(req *TallyRequest, resp *TallyResponse) error {
	n := c.g.NumNodes()
	switch req.Kind {
	case KindConnected, KindWithin:
		if len(resp.Counts) != len(req.Centers) {
			return fmt.Errorf("got %d count rows, want %d", len(resp.Counts), len(req.Centers))
		}
		for j, row := range resp.Counts {
			if len(row) != n {
				return fmt.Errorf("count row %d has %d nodes, want %d", j, len(row), n)
			}
		}
	case KindDistances:
		if len(resp.Hist) != n || len(resp.Unreachable) != n {
			return fmt.Errorf("got %d histograms / %d unreachable rows, want %d", len(resp.Hist), len(resp.Unreachable), n)
		}
	case KindSpread, KindReliability, KindComponents, KindLargest:
		if len(resp.Totals) != 1 {
			return fmt.Errorf("got %d totals, want 1", len(resp.Totals))
		}
	case KindMarginal:
		want := len(req.Candidates)
		if want == 0 {
			want = n // empty candidates = all nodes
		}
		if len(resp.Totals) != want {
			return fmt.Errorf("got %d totals, want %d", len(resp.Totals), want)
		}
	}
	return nil
}

// ---- scatter -------------------------------------------------------------

// scatterGroup is one worker's share of a scatter round: the blocks it
// owns, coalesced into ascending ranges. The win flag admits exactly one
// answer when a hedge races a straggler.
type scatterGroup struct {
	ownerSlot int
	owner     *member
	bis       []int
	ranges    []Range
	worlds    int
	won       atomic.Bool
}

type groupOutcome struct {
	g    *scatterGroup
	resp *TallyResponse
	err  error
}

type attemptResult struct {
	resp *TallyResponse
	err  error
}

// errDuplicate marks a hedged answer that lost the race; suppressed
// before merging and never counted as a worker failure.
var errDuplicate = errors.New("shard: duplicate hedged answer suppressed")

// scatter executes one tally shape over the world range [lo, hi): the
// range is cut into store-aligned blocks, each block is assigned to its
// (sticky) owner in the fleet, every worker answers its coalesced ranges
// over its persistent stream in parallel, and merge is called —
// serialized — once per winning response. Blocks of a failed worker are
// re-scattered onto other live workers in up to opts.Retries further
// rounds; stragglers may be hedged (HedgeDelay) with the duplicate answer
// suppressed. A block is merged exactly once or the whole call errors —
// scatter audits that the merged world total equals hi-lo — so partial
// failures, membership changes and hedges can never double- or
// under-count. The request's Ranges field is filled per worker; every
// other field is forwarded as given.
func (c *Coordinator) scatter(ctx context.Context, req TallyRequest, lo, hi int, merge func(*TallyResponse)) error {
	if hi <= lo {
		return nil
	}
	ctx, ssp := obs.StartSpan(ctx, "scatter")
	defer ssp.End()
	ssp.Set("kind", req.Kind)
	ssp.Set("worlds", int64(hi-lo))
	req.Graph = c.name
	bw := c.store.BlockWorlds()
	blockRange := func(bi int) Range {
		l, h := bi*bw, (bi+1)*bw
		if l < lo {
			l = lo
		}
		if h > hi {
			h = hi
		}
		return Range{Lo: l, Hi: h}
	}
	var pool []int
	for bi := lo / bw; bi*bw < hi; bi++ {
		pool = append(pool, bi)
	}
	exclude := make(map[int]int)
	mergedWorlds := 0
	rescattered := 0
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries && len(pool) > 0; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 0 {
			rescattered += len(pool)
			if rescattered > c.opts.RetryBudget {
				return fmt.Errorf("shard: retry budget exhausted (%d block re-scatters > %d): %w",
					rescattered, c.opts.RetryBudget, lastErr)
			}
			c.fleet.rescatters.Add(uint64(len(pool)))
		}
		assign, err := c.fleet.assign(pool, exclude, attempt)
		if err != nil {
			return err // no live workers
		}
		// One span per scatter round (the retry loop's iteration): round 0
		// is the primary fan-out, later rounds re-scatter failed blocks.
		// Per-worker attempts hang off it as child spans via rctx.
		rctx, rsp := obs.StartSpan(ctx, "scatter_round")
		rsp.Set("round", int64(attempt))
		rsp.Set("blocks", int64(len(pool)))
		rsp.Set("workers", int64(len(assign)))
		slots := make([]int, 0, len(assign))
		for s := range assign {
			slots = append(slots, s)
		}
		sort.Ints(slots)
		results := make(chan groupOutcome, len(slots))
		for _, s := range slots {
			bis := assign[s]
			g := &scatterGroup{ownerSlot: s, owner: c.fleet.member(s), bis: bis}
			for _, bi := range bis {
				rg := blockRange(bi)
				if k := len(g.ranges); k > 0 && g.ranges[k-1].Hi == rg.Lo {
					g.ranges[k-1].Hi = rg.Hi
				} else {
					g.ranges = append(g.ranges, rg)
				}
				g.worlds += rg.Worlds()
			}
			go c.runGroup(rctx, &req, g, results)
		}
		pool = pool[:0]
		for range slots {
			out := <-results
			if out.err != nil {
				lastErr = out.err
				pool = append(pool, out.g.bis...)
				for _, bi := range out.g.bis {
					exclude[bi] = out.g.ownerSlot
				}
				continue
			}
			resp := out.resp
			if c.opts.AuditFraction > 0 && c.auditPick(out.g) {
				if v := c.auditGroup(rctx, &req, out.g, resp); v != nil {
					resp = v
				}
			}
			mergedWorlds += resp.Worlds
			merge(resp)
		}
		sort.Ints(pool)
		if len(pool) > 0 {
			rsp.Set("failed_blocks", int64(len(pool)))
			if lastErr != nil {
				rsp.Set("error", lastErr.Error())
			}
		}
		rsp.End()
	}
	if len(pool) > 0 {
		return fmt.Errorf("shard: %d world block(s) unserved after %d attempts: %w",
			len(pool), c.opts.Retries+1, lastErr)
	}
	if mergedWorlds != hi-lo {
		return fmt.Errorf("shard: merged %d worlds, want %d: exactly-once accounting violated", mergedWorlds, hi-lo)
	}
	return nil
}

// runGroup resolves one scatter group: the owner answers, or — after
// HedgeDelay — a second live worker races it and the first answer wins.
// Exactly one outcome is delivered to results. A failed primary does not
// trigger the hedge (failures belong to the retry rounds; hedging is
// straggler mitigation only).
func (c *Coordinator) runGroup(ctx context.Context, base *TallyRequest, g *scatterGroup, results chan<- groupOutcome) {
	wreq := *base
	wreq.Ranges = g.ranges
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	resCh := make(chan attemptResult, 2)
	launched := 1
	go func() { resCh <- c.attemptWorker(actx, g, g.owner, &wreq, false) }()
	var hedgeC <-chan time.Time
	var hedge *member
	if c.opts.HedgeDelay > 0 {
		if hm := c.fleet.hedgeTarget(g.ownerSlot); hm != nil {
			hedge = hm
			t := time.NewTimer(c.opts.HedgeDelay)
			defer t.Stop()
			hedgeC = t.C
		}
	}
	var firstErr error
	done := 0
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			c.fleet.hedges.Add(1)
			launched++
			go func() { resCh <- c.attemptWorker(actx, g, hedge, &wreq, true) }()
		case r := <-resCh:
			done++
			if r.resp != nil {
				results <- groupOutcome{g: g, resp: r.resp}
				return // the twin, if any, self-reports as a duplicate
			}
			if firstErr == nil || errors.Is(firstErr, errDuplicate) {
				firstErr = r.err
			}
			hedgeC = nil // a failed primary falls to the retry rounds
			if done == launched {
				results <- groupOutcome{g: g, err: firstErr}
				return
			}
		}
	}
}

// attemptWorker runs one attempt of a group against m and settles its
// stats: the race winner records a success, a losing duplicate records a
// duplicate (never a failure — that was the /statsz double-count bug), a
// post-win error (the winner cancelled us) records nothing, and only a
// genuine pre-win fault records a failure. On a traced query the attempt
// is a child span of the scatter round, carrying the worker's wire-borne
// annotation (cache hits, worlds scanned, store tier) — the span's own
// duration is the coordinator-observed RTT, so no clock agreement with
// the worker is needed.
func (c *Coordinator) attemptWorker(ctx context.Context, g *scatterGroup, m *member, req *TallyRequest, hedged bool) attemptResult {
	sp := obs.SpanFromContext(ctx).StartChild("worker")
	defer sp.End()
	if sp != nil {
		sp.SetAll(
			obs.Attr{Key: "addr", Value: m.wc.base},
			obs.Attr{Key: "blocks", Value: int64(len(g.bis))},
			obs.Attr{Key: "worlds", Value: int64(g.worlds)},
		)
		if hedged {
			sp.Set("hedged", true)
		}
	}
	t0 := time.Now()
	resp, annot, err := m.wc.call(ctx, c.opts.RequestTimeout, req, sp)
	rtt := time.Since(t0)
	if annot != nil && sp != nil {
		sp.SetAll(
			obs.Attr{Key: "worker_elapsed_ms", Value: float64(annot.ElapsedNS) / 1e6},
			obs.Attr{Key: "worker_worlds_scanned", Value: int64(annot.Worlds)},
			obs.Attr{Key: "worker_cache_hits", Value: int64(annot.CacheHits)},
			obs.Attr{Key: "worker_cache_miss", Value: int64(annot.CacheMiss)},
			obs.Attr{Key: "store_ram_hits", Value: int64(annot.StoreHits)},
			obs.Attr{Key: "store_disk_hits", Value: int64(annot.DiskHits)},
			obs.Attr{Key: "store_recomputes", Value: int64(annot.Recomputes)},
			obs.Attr{Key: "store_materializations", Value: int64(annot.Materializations)},
		)
	}
	if err == nil {
		if cerr := c.checkResponse(req, resp); cerr != nil {
			err = fmt.Errorf("%s: malformed tally response: %w", m.wc.base, cerr)
		}
	}
	if err == nil {
		if f := c.opts.OnWorkerRTT; f != nil {
			f(m.wc.base, rtt)
		}
		if g.won.CompareAndSwap(false, true) {
			sp.Set("outcome", "won")
			m.wc.noteSuccess(rtt, len(req.Ranges), g.worlds)
			m.breakerReset()
			return attemptResult{resp: resp}
		}
		sp.Set("outcome", "duplicate")
		m.wc.noteDuplicate()
		c.fleet.duplicates.Add(1)
		m.breakerReset() // a correct duplicate is still proof of health
		return attemptResult{err: errDuplicate}
	}
	sp.Set("error", err.Error())
	if g.won.Load() {
		sp.Set("outcome", "moot")
		return attemptResult{err: err} // moot: the race is already settled
	}
	sp.Set("outcome", "failed")
	m.wc.noteFailure(err)
	c.recordFault(m, err)
	return attemptResult{err: err}
}

// ---- conn.ContextOracle --------------------------------------------------

// lookupTally returns the cached tally for key, inserting an empty one
// (with FIFO ring eviction, mirroring conn.MonteCarlo) if absent.
func (c *Coordinator) lookupTally(key coKey) *coTally {
	c.mu.Lock()
	defer c.mu.Unlock()
	tally, ok := c.cache[key]
	if !ok {
		if len(c.order) >= c.maxCache {
			delete(c.cache, c.order[c.cacheHead])
			c.order[c.cacheHead] = key
			c.cacheHead++
			if c.cacheHead == len(c.order) {
				c.cacheHead = 0
			}
		} else {
			c.order = append(c.order, key)
		}
		tally = &coTally{counts: make([]int32, c.g.NumNodes())}
		c.cache[key] = tally
	}
	return tally
}

// estimate converts a tally into the caller-owned estimate vector, with
// the exact float operations conn.MonteCarlo uses (multiply by the
// reciprocal), so coordinator estimates are bit-identical to local ones.
// The caller holds tally.mu.
func (tally *coTally) estimate() []float64 {
	out := make([]float64, len(tally.counts))
	inv := 1 / float64(tally.rDone)
	for i, cnt := range tally.counts {
		out[i] = float64(cnt) * inv
	}
	return out
}

// FromCenter implements conn.Oracle.
func (c *Coordinator) FromCenter(ctr graph.NodeID, depth int, r int) []float64 {
	out, _ := c.FromCenterCtx(context.Background(), ctr, depth, r)
	return out
}

// FromCenters implements conn.Oracle.
func (c *Coordinator) FromCenters(cs []graph.NodeID, depth int, r int) [][]float64 {
	out, _ := c.FromCentersCtx(context.Background(), cs, depth, r)
	return out
}

// FromCenterCtx implements conn.ContextOracle.
func (c *Coordinator) FromCenterCtx(ctx context.Context, ctr graph.NodeID, depth int, r int) ([]float64, error) {
	out, err := c.FromCentersCtx(ctx, []graph.NodeID{ctr}, depth, r)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// coSlot tracks one distinct (center, depth) of a batch.
type coSlot struct {
	key   coKey
	tally *coTally
	outAt []int
}

// FromCentersCtx implements conn.ContextOracle: per-center estimate
// vectors over the first r worlds (or more, when a cached tally already
// covers more — the same higher-precision contract as conn.MonteCarlo).
// Pending tallies are extended by scattering only their missing world
// range; tallies at different progress levels scatter as separate rounds,
// and every gathered count lands in a scratch buffer that is folded into
// the cache only when its round fully succeeds — cancellation and worker
// failures withhold answers, never corrupt tallies.
func (c *Coordinator) FromCentersCtx(ctx context.Context, cs []graph.NodeID, depth int, r int) ([][]float64, error) {
	if !c.Sharded() {
		return c.local.FromCentersCtx(ctx, cs, depth, r)
	}
	if len(cs) == 0 {
		return nil, nil
	}
	if r < 1 {
		r = 1
	}
	if depth < 0 {
		depth = conn.Unlimited
	}

	// Deduplicate centers, preserving first-occurrence order (duplicates
	// share one tally and one scatter slot).
	slots := make([]*coSlot, 0, len(cs))
	byKey := make(map[coKey]*coSlot, len(cs))
	for i, ctr := range cs {
		key := coKey{c: ctr, depth: depth}
		sl := byKey[key]
		if sl == nil {
			sl = &coSlot{key: key}
			byKey[key] = sl
			slots = append(slots, sl)
		}
		sl.outAt = append(sl.outAt, i)
	}
	for _, sl := range slots {
		sl.tally = c.lookupTally(sl.key)
	}

	// Lock in canonical center order so concurrent overlapping batches
	// cannot deadlock (same discipline as conn.MonteCarlo).
	locked := make([]*coSlot, len(slots))
	copy(locked, slots)
	sort.Slice(locked, func(i, j int) bool { return locked[i].key.c < locked[j].key.c })
	for _, sl := range locked {
		sl.tally.mu.Lock()
	}
	defer func() {
		for _, sl := range locked {
			sl.tally.mu.Unlock()
		}
	}()

	// Group pending slots by their current progress: each distinct rDone
	// needs a different world range, and within a group one scatter
	// answers every center.
	groups := make(map[int][]*coSlot)
	for _, sl := range slots {
		if sl.tally.rDone < r {
			groups[sl.tally.rDone] = append(groups[sl.tally.rDone], sl)
		}
	}
	los := make([]int, 0, len(groups))
	for lo := range groups {
		los = append(los, lo)
	}
	sort.Ints(los)
	n := c.g.NumNodes()
	for _, lo := range los {
		group := groups[lo]
		centers := make([]graph.NodeID, len(group))
		for j, sl := range group {
			centers[j] = sl.key.c
		}
		kind := KindConnected
		reqDepth := 0
		if depth >= 0 {
			kind = KindWithin
			reqDepth = depth
		}
		scratch := make([]int32, len(group)*n)
		var mergeMu sync.Mutex
		err := c.scatter(ctx, TallyRequest{
			Kind:    kind,
			Centers: centers,
			Depth:   reqDepth,
		}, lo, r, func(resp *TallyResponse) {
			mergeMu.Lock()
			defer mergeMu.Unlock()
			for j := range group {
				row := scratch[j*n : (j+1)*n]
				for u, cnt := range resp.Counts[j] {
					row[u] += cnt
				}
			}
		})
		if err != nil {
			return nil, err
		}
		// The fold of the round's scratch into the cached tallies — the
		// "merge" step of the scatter/gather pipeline, separate from the
		// scatter span so an operator sees gather time and fold time
		// apart.
		_, msp := obs.StartSpan(ctx, "merge")
		msp.Set("centers", int64(len(group)))
		msp.Set("worlds", int64(r-lo))
		for j, sl := range group {
			row := scratch[j*n : (j+1)*n]
			for u, cnt := range row {
				sl.tally.counts[u] += cnt
			}
			sl.tally.rDone = r
		}
		msp.End()
	}

	out := make([][]float64, len(cs))
	for _, sl := range slots {
		est := sl.tally.estimate()
		for i, pos := range sl.outAt {
			if i == 0 {
				out[pos] = est
			} else {
				cp := make([]float64, len(est))
				copy(cp, est)
				out[pos] = cp
			}
		}
	}
	return out, nil
}

// Pair estimates Pr(u ~ v) with r samples.
func (c *Coordinator) Pair(u, v graph.NodeID, r int) float64 {
	p, _ := c.PairCtx(context.Background(), u, v, r)
	return p
}

// PairCtx estimates Pr(u ~ v) over the first r worlds by scattering the
// pair tally (bit-identical to conn.MonteCarlo.PairCtx: same integer
// count, same division).
func (c *Coordinator) PairCtx(ctx context.Context, u, v graph.NodeID, r int) (float64, error) {
	if !c.Sharded() {
		return c.local.PairCtx(ctx, u, v, r)
	}
	var (
		mu  sync.Mutex
		cnt int64
	)
	err := c.scatter(ctx, TallyRequest{Kind: KindPair, U: u, V: v}, 0, r, func(resp *TallyResponse) {
		mu.Lock()
		cnt += resp.Count
		mu.Unlock()
	})
	if err != nil {
		return 0, err
	}
	return float64(cnt) / float64(r), nil
}

// ---- k-NN distance distributions ----------------------------------------

// DistancesCtx computes the hop-distance distribution from src over the
// first r worlds by scattering per-node histogram tallies — the sharded
// form of knn.SampleStoreCtx, merged with knn's own order-free Merge, so
// the distribution (and every measure derived from it) is identical to the
// local computation.
func (c *Coordinator) DistancesCtx(ctx context.Context, src graph.NodeID, r int) (*knn.DistanceDistribution, error) {
	if !c.Sharded() {
		return knn.SampleStoreCtx(ctx, c.store, src, r)
	}
	n := c.g.NumNodes()
	dd := &knn.DistanceDistribution{
		Source:      src,
		R:           r,
		Hist:        make([]map[int32]int, n),
		Unreachable: make([]int, n),
	}
	for v := range dd.Hist {
		dd.Hist[v] = make(map[int32]int, 8)
	}
	var mu sync.Mutex
	err := c.scatter(ctx, TallyRequest{Kind: KindDistances, Source: src}, 0, r, func(resp *TallyResponse) {
		mu.Lock()
		defer mu.Unlock()
		for v := 0; v < n; v++ {
			for _, b := range resp.Hist[v] {
				dd.Hist[v][b.D] += int(b.N)
			}
			dd.Unreachable[v] += int(resp.Unreachable[v])
		}
	})
	if err != nil {
		return nil, err
	}
	return dd, nil
}

// ---- influence spread ----------------------------------------------------

// SpreadCtx estimates the expected influence spread of seeds over the
// first r worlds — the sharded influence.SpreadCtx.
func (c *Coordinator) SpreadCtx(ctx context.Context, seeds []graph.NodeID, r int) (float64, error) {
	if !c.Sharded() {
		return influence.SpreadCtx(ctx, c.store, seeds, r)
	}
	if len(seeds) == 0 {
		return 0, ctx.Err()
	}
	total, err := c.spreadTally(ctx, KindSpread, seeds, nil, r)
	if err != nil {
		return 0, err
	}
	return float64(total[0]) / float64(r), nil
}

// spreadTally scatters one spread/marginal tally and gathers the summed
// totals.
func (c *Coordinator) spreadTally(ctx context.Context, kind string, seeds, candidates []graph.NodeID, r int) ([]int64, error) {
	width := 1
	if kind == KindMarginal {
		if width = len(candidates); width == 0 {
			width = c.g.NumNodes() // empty candidates = all nodes
		}
	}
	totals := make([]int64, width)
	var mu sync.Mutex
	err := c.scatter(ctx, TallyRequest{Kind: kind, Seeds: seeds, Candidates: candidates}, 0, r, func(resp *TallyResponse) {
		mu.Lock()
		for i, t := range resp.Totals {
			totals[i] += t
		}
		mu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	return totals, nil
}

// coordEvaluator drives influence.GreedyEval with scattered marginal
// tallies: the seed set lives on the coordinator and travels with every
// request, so workers stay stateless.
type coordEvaluator struct {
	c     *Coordinator
	r     int
	seeds []graph.NodeID
}

func (ev *coordEvaluator) InitialGains(ctx context.Context) ([]int64, error) {
	// nil candidates is the wire's "all nodes" marker (KindMarginal):
	// the initial round gets one total per node without shipping n IDs.
	return ev.c.spreadTally(ctx, KindMarginal, nil, nil, ev.r)
}

func (ev *coordEvaluator) MarginalGain(ctx context.Context, v graph.NodeID) (int64, error) {
	totals, err := ev.c.spreadTally(ctx, KindMarginal, ev.seeds, []graph.NodeID{v}, ev.r)
	if err != nil {
		return 0, err
	}
	return totals[0], nil
}

func (ev *coordEvaluator) Picked(_ context.Context, v graph.NodeID) error {
	ev.seeds = append(ev.seeds, v)
	return nil
}

// GreedyCtx runs the CELF greedy influence maximization with scattered
// marginal-gain tallies — the sharded influence.GreedyCtx. Because the
// scattered tallies are the same integers the local evaluator computes,
// the selected seeds, spreads and evaluation counts are identical.
func (c *Coordinator) GreedyCtx(ctx context.Context, k, r int) (*influence.Result, error) {
	if !c.Sharded() {
		return influence.GreedyCtx(ctx, c.store, k, r)
	}
	return influence.GreedyEval(ctx, c.g.NumNodes(), k, r, &coordEvaluator{c: c, r: r})
}

// ---- reliability ---------------------------------------------------------

// totalTally scatters one scalar-total kind and gathers the summed int64.
func (c *Coordinator) totalTally(ctx context.Context, req TallyRequest, r int) (int64, error) {
	var (
		mu    sync.Mutex
		total int64
	)
	err := c.scatter(ctx, req, 0, r, func(resp *TallyResponse) {
		mu.Lock()
		total += resp.Totals[0]
		mu.Unlock()
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}

// SetReliabilityCtx estimates k-terminal reliability of set over the first
// r worlds — the sharded metrics.SetReliabilityCtx (same integer tally,
// same final division, so bit-identical).
func (c *Coordinator) SetReliabilityCtx(ctx context.Context, set []graph.NodeID, r int) (float64, error) {
	if !c.Sharded() {
		return metrics.SetReliabilityCtx(ctx, c.store, set, r)
	}
	if len(set) <= 1 {
		return 1, ctx.Err()
	}
	hits, err := c.totalTally(ctx, TallyRequest{Kind: KindReliability, Seeds: set}, r)
	if err != nil {
		return 0, err
	}
	return float64(hits) / float64(r), nil
}

// AllTerminalReliabilityCtx estimates the probability a random world is
// connected — the sharded metrics.AllTerminalReliabilityCtx. On the wire,
// empty Seeds on KindReliability means all-terminal.
func (c *Coordinator) AllTerminalReliabilityCtx(ctx context.Context, r int) (float64, error) {
	if !c.Sharded() {
		return metrics.AllTerminalReliabilityCtx(ctx, c.store, r)
	}
	hits, err := c.totalTally(ctx, TallyRequest{Kind: KindReliability}, r)
	if err != nil {
		return 0, err
	}
	return float64(hits) / float64(r), nil
}

// ExpectedComponentsCtx estimates the expected component count of a random
// world — the sharded metrics.ExpectedComponentsCtx.
func (c *Coordinator) ExpectedComponentsCtx(ctx context.Context, r int) (float64, error) {
	if !c.Sharded() {
		return metrics.ExpectedComponentsCtx(ctx, c.store, r)
	}
	total, err := c.totalTally(ctx, TallyRequest{Kind: KindComponents}, r)
	if err != nil {
		return 0, err
	}
	return float64(total) / float64(r), nil
}

// LargestComponentFractionCtx estimates the expected fraction of nodes in
// the largest component — the sharded metrics.LargestComponentFractionCtx.
func (c *Coordinator) LargestComponentFractionCtx(ctx context.Context, r int) (float64, error) {
	if !c.Sharded() {
		return metrics.LargestComponentFractionCtx(ctx, c.store, r)
	}
	total, err := c.totalTally(ctx, TallyRequest{Kind: KindLargest}, r)
	if err != nil {
		return 0, err
	}
	return float64(total) / float64(r) / float64(c.g.NumNodes()), nil
}
