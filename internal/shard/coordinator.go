package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"ucgraph/internal/conn"
	"ucgraph/internal/graph"
	"ucgraph/internal/influence"
	"ucgraph/internal/knn"
	"ucgraph/internal/worldstore"
)

// CoordinatorOptions configures a Coordinator. The zero value selects the
// documented defaults.
type CoordinatorOptions struct {
	// Client is the HTTP client used for worker requests (default: a
	// dedicated client with no global timeout — per-query deadlines come
	// from the caller's context, per-attempt ones from RequestTimeout).
	Client *http.Client
	// Retries is how many extra scatter rounds a query may spend
	// re-scattering ranges whose worker failed (default 2). Each round
	// rotates the block-to-worker assignment, so a dead worker's ranges
	// land on survivors; a restarted worker answers for itself again.
	Retries int
	// RequestTimeout caps one worker request (default 60s), layered under
	// the query context, so a hung worker turns into a retriable failure
	// instead of stalling the whole query until its deadline.
	RequestTimeout time.Duration
	// Parallelism is handed to the local fallback estimator (<= 0 selects
	// GOMAXPROCS). Results do not depend on it.
	Parallelism int
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Retries <= 0 {
		o.Retries = 2
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	return o
}

// WorkerStats is the health snapshot of one worker, as surfaced by the
// daemon's /statsz endpoint.
type WorkerStats struct {
	// Addr is the worker's base URL.
	Addr string
	// Requests and Failures count tally/ping round-trips issued and
	// failed.
	Requests, Failures uint64
	// RangesServed and WorldsServed count the world ranges (and worlds)
	// whose tallies this worker successfully returned.
	RangesServed, WorldsServed uint64
	// LastRTT is the round-trip time of the last successful request;
	// LastOK is when it completed. LastErr is the most recent failure
	// (empty if none).
	LastRTT time.Duration
	LastOK  time.Time
	LastErr string
}

// workerClient is the coordinator-side handle of one worker.
type workerClient struct {
	base   string // normalized base URL, no trailing slash
	client *http.Client

	mu    sync.Mutex
	stats WorkerStats
}

// newWorkerClient normalizes addr ("host:port" or a full URL) into a
// client.
func newWorkerClient(addr string, client *http.Client) *workerClient {
	base := strings.TrimRight(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &workerClient{base: base, client: client, stats: WorkerStats{Addr: base}}
}

func (wc *workerClient) noteSuccess(rtt time.Duration, ranges, worlds int) {
	wc.mu.Lock()
	wc.stats.Requests++
	wc.stats.RangesServed += uint64(ranges)
	wc.stats.WorldsServed += uint64(worlds)
	wc.stats.LastRTT = rtt
	wc.stats.LastOK = time.Now()
	wc.stats.LastErr = ""
	wc.mu.Unlock()
}

func (wc *workerClient) noteFailure(err error) {
	wc.mu.Lock()
	wc.stats.Requests++
	wc.stats.Failures++
	wc.stats.LastErr = err.Error()
	wc.mu.Unlock()
}

func (wc *workerClient) snapshot() WorkerStats {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.stats
}

// do posts one JSON request and decodes the JSON response into out.
func (wc *workerClient) do(ctx context.Context, path string, in, out any) error {
	var body io.Reader
	method := http.MethodGet
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
		method = http.MethodPost
	}
	req, err := http.NewRequestWithContext(ctx, method, wc.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := wc.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return fmt.Errorf("%s%s: %s", wc.base, path, e.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// tally runs one tally request against the worker, bounded by the
// per-attempt timeout, recording health stats either way.
func (wc *workerClient) tally(ctx context.Context, timeout time.Duration, req *TallyRequest) (*TallyResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	worlds := 0
	for _, rg := range req.Ranges {
		worlds += rg.Worlds()
	}
	t0 := time.Now()
	var resp TallyResponse
	if err := wc.do(ctx, PathTally, req, &resp); err != nil {
		wc.noteFailure(err)
		return nil, err
	}
	if resp.Worlds != worlds {
		err := fmt.Errorf("%s: tallied %d worlds, asked for %d", wc.base, resp.Worlds, worlds)
		wc.noteFailure(err)
		return nil, err
	}
	wc.noteSuccess(time.Since(t0), len(req.Ranges), worlds)
	return &resp, nil
}

// coTally is one cached center tally of the coordinator: per-node counts
// over the first rDone worlds (the same shape conn.MonteCarlo caches, so
// progressive sampling schedules extend instead of recomputing).
type coTally struct {
	mu     sync.Mutex
	counts []int32
	rDone  int
}

type coKey struct {
	c     graph.NodeID
	depth int
}

// Coordinator implements the estimator surface over a fleet of shard
// workers: every query becomes one or more scatter rounds of disjoint
// block-aligned world ranges, and the gathered integer tallies are summed
// into exactly the counts a single-process run over the same stream
// produces — so estimates are bit-identical to conn.MonteCarlo (and the
// knn / influence entry points) for every worker count and every
// partitioning, and clustering drivers consume a Coordinator wherever
// they would a conn.MonteCarlo (it implements conn.ContextOracle).
//
// Failure handling never trades accuracy: a failed worker's ranges are
// re-scattered (rotated onto other workers) and each range is merged
// exactly once; a query that cannot complete returns an error and no
// estimate. With no workers configured the Coordinator degrades to the
// in-process estimator over the shared world store of the same
// (graph, seed).
//
// Like the estimator it mirrors, a Coordinator caches per-(center, depth)
// tallies and extends them when later queries raise the sample size, so a
// progressive clustering schedule scatters only the new worlds of each
// phase. Safe for concurrent use.
type Coordinator struct {
	name    string
	g       *graph.Uncertain
	seed    uint64
	store   *worldstore.Store
	local   *conn.MonteCarlo
	workers []*workerClient
	opts    CoordinatorOptions

	mu        sync.Mutex
	cache     map[coKey]*coTally
	order     []coKey
	cacheHead int
	maxCache  int
}

var _ conn.ContextOracle = (*Coordinator)(nil)

// NewCoordinator builds a coordinator for the graph served under name by
// the given workers. g and seed must match what the workers were started
// with (Ping verifies). With no workers, every query runs on the local
// in-process estimator instead — the single-binary degenerate deployment.
func NewCoordinator(name string, g *graph.Uncertain, seed uint64, workerAddrs []string, opts CoordinatorOptions) *Coordinator {
	opts = opts.withDefaults()
	local := conn.NewMonteCarlo(g, seed)
	local.SetParallelism(opts.Parallelism)
	n := g.NumNodes()
	maxCache := 64 << 20 / (4 * n)
	if maxCache < 64 {
		maxCache = 64
	}
	c := &Coordinator{
		name:     name,
		g:        g,
		seed:     seed,
		store:    local.Store(),
		local:    local,
		opts:     opts,
		cache:    make(map[coKey]*coTally),
		maxCache: maxCache,
	}
	for _, addr := range workerAddrs {
		if addr = strings.TrimSpace(addr); addr != "" {
			c.workers = append(c.workers, newWorkerClient(addr, opts.Client))
		}
	}
	return c
}

// Fork returns a coordinator sharing this one's workers (and their health
// stats) but with a fresh, private tally cache — the sharded analogue of
// building a private conn.MonteCarlo for one clustering run, so the run's
// result depends only on (graph, seed, request), never on which centers
// other traffic warmed first.
func (c *Coordinator) Fork() *Coordinator {
	fork := &Coordinator{
		name:     c.name,
		g:        c.g,
		seed:     c.seed,
		store:    c.store,
		local:    conn.NewMonteCarlo(c.g, c.seed),
		workers:  c.workers,
		opts:     c.opts,
		cache:    make(map[coKey]*coTally),
		maxCache: c.maxCache,
	}
	fork.local.SetParallelism(c.opts.Parallelism)
	return fork
}

// Sharded reports whether the coordinator has workers configured; false
// means every query runs locally.
func (c *Coordinator) Sharded() bool { return len(c.workers) > 0 }

// NumNodes implements conn.Oracle.
func (c *Coordinator) NumNodes() int { return c.g.NumNodes() }

// Graph returns the underlying graph.
func (c *Coordinator) Graph() *graph.Uncertain { return c.g }

// Store exposes the local shared world store (used by consumers that stay
// local, and for block-size agreement with the workers).
func (c *Coordinator) Store() *worldstore.Store { return c.store }

// Workers returns the configured worker base URLs.
func (c *Coordinator) Workers() []string {
	out := make([]string, len(c.workers))
	for i, wc := range c.workers {
		out[i] = wc.base
	}
	return out
}

// WorkerStats returns a health snapshot per worker.
func (c *Coordinator) WorkerStats() []WorkerStats {
	out := make([]WorkerStats, len(c.workers))
	for i, wc := range c.workers {
		out[i] = wc.snapshot()
	}
	return out
}

// Ping verifies every worker is reachable and serves the coordinator's
// graph with matching identity (nodes, edges, seed) — the readiness probe
// of the sharded deployment. Workers are pinged concurrently, so the
// probe costs one round-trip of the slowest worker, not the sum. It
// returns a joined error of the unreachable or mismatched workers; nil
// means all workers agree on the world stream.
func (c *Coordinator) Ping(ctx context.Context) error {
	errs := make([]error, len(c.workers))
	var wg sync.WaitGroup
	for i, wc := range c.workers {
		wg.Add(1)
		go func(i int, wc *workerClient) {
			defer wg.Done()
			errs[i] = c.pingWorker(ctx, wc)
		}(i, wc)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// pingWorker pings one worker and verifies its graph identity, recording
// the outcome in its health stats.
func (c *Coordinator) pingWorker(ctx context.Context, wc *workerClient) error {
	var resp PingResponse
	t0 := time.Now()
	if err := wc.do(ctx, PathPing, nil, &resp); err != nil {
		wc.noteFailure(err)
		return err
	}
	var werr error
	found := false
	for _, pg := range resp.Graphs {
		if pg.Name != c.name {
			continue
		}
		found = true
		if pg.Nodes != c.g.NumNodes() || pg.Edges != c.g.NumEdges() || pg.Seed != c.seed {
			werr = fmt.Errorf(
				"%s: graph %q mismatch: worker has %d nodes / %d edges / seed %d, coordinator %d / %d / %d",
				wc.base, c.name, pg.Nodes, pg.Edges, pg.Seed,
				c.g.NumNodes(), c.g.NumEdges(), c.seed)
		}
	}
	if !found {
		werr = fmt.Errorf("%s: worker does not serve graph %q", wc.base, c.name)
	}
	if werr != nil {
		wc.noteFailure(werr)
		return werr
	}
	wc.noteSuccess(time.Since(t0), 0, 0)
	return nil
}

// checkResponse validates the shape of a worker's tally payload against
// the request, so a version-skewed worker — or one restarted with a
// different graph under the same name — surfaces as a retriable worker
// failure instead of an index panic inside the merge.
func (c *Coordinator) checkResponse(req *TallyRequest, resp *TallyResponse) error {
	n := c.g.NumNodes()
	switch req.Kind {
	case KindConnected, KindWithin:
		if len(resp.Counts) != len(req.Centers) {
			return fmt.Errorf("got %d count rows, want %d", len(resp.Counts), len(req.Centers))
		}
		for j, row := range resp.Counts {
			if len(row) != n {
				return fmt.Errorf("count row %d has %d nodes, want %d", j, len(row), n)
			}
		}
	case KindDistances:
		if len(resp.Hist) != n || len(resp.Unreachable) != n {
			return fmt.Errorf("got %d histograms / %d unreachable rows, want %d", len(resp.Hist), len(resp.Unreachable), n)
		}
	case KindSpread:
		if len(resp.Totals) != 1 {
			return fmt.Errorf("got %d totals, want 1", len(resp.Totals))
		}
	case KindMarginal:
		want := len(req.Candidates)
		if want == 0 {
			want = n // empty candidates = all nodes
		}
		if len(resp.Totals) != want {
			return fmt.Errorf("got %d totals, want %d", len(resp.Totals), want)
		}
	}
	return nil
}

// scatter executes one tally shape over the world range [lo, hi): the
// range is cut into block-aligned subranges striped across the workers
// (Partition), each worker answers its subset in parallel, and merge is
// called — serialized — once per successful response. Ranges of a failed
// worker are re-scattered in up to opts.Retries further rounds with a
// rotated assignment; a range is merged exactly once or the whole call
// errors, so partial failures can never double- or under-count. The
// request's Ranges field is filled per worker; every other field is
// forwarded as given.
func (c *Coordinator) scatter(ctx context.Context, req TallyRequest, lo, hi int, merge func(*TallyResponse)) error {
	if hi <= lo {
		return nil
	}
	if len(c.workers) == 0 {
		return errors.New("shard: scatter with no workers configured")
	}
	req.Graph = c.name
	bw := c.store.BlockWorlds()
	pool := []Range{{Lo: lo, Hi: hi}}
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries && len(pool) > 0; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Assign every pooled range's blocks to workers; rotation moves
		// re-scattered blocks onto different workers each round.
		parts := make([][]Range, len(c.workers))
		for _, rg := range pool {
			for w, sub := range Partition(rg.Lo, rg.Hi, bw, len(c.workers), attempt) {
				parts[w] = append(parts[w], sub...)
			}
		}
		type outcome struct {
			w    int
			resp *TallyResponse
			err  error
		}
		results := make(chan outcome, len(c.workers))
		inFlight := 0
		for w, part := range parts {
			if len(part) == 0 {
				continue
			}
			inFlight++
			wreq := req
			wreq.Ranges = part
			go func(w int, wreq TallyRequest) {
				resp, err := c.workers[w].tally(ctx, c.opts.RequestTimeout, &wreq)
				results <- outcome{w: w, resp: resp, err: err}
			}(w, wreq)
		}
		pool = pool[:0]
		for ; inFlight > 0; inFlight-- {
			out := <-results
			if out.err == nil {
				if err := c.checkResponse(&req, out.resp); err != nil {
					out.err = fmt.Errorf("%s: malformed tally response: %w", c.workers[out.w].base, err)
					c.workers[out.w].noteFailure(out.err)
				}
			}
			if out.err != nil {
				lastErr = out.err
				pool = append(pool, parts[out.w]...)
				continue
			}
			merge(out.resp)
		}
	}
	if len(pool) > 0 {
		return fmt.Errorf("shard: %d world range(s) unserved after %d attempts: %w",
			len(pool), c.opts.Retries+1, lastErr)
	}
	return nil
}

// ---- conn.ContextOracle --------------------------------------------------

// lookupTally returns the cached tally for key, inserting an empty one
// (with FIFO ring eviction, mirroring conn.MonteCarlo) if absent.
func (c *Coordinator) lookupTally(key coKey) *coTally {
	c.mu.Lock()
	defer c.mu.Unlock()
	tally, ok := c.cache[key]
	if !ok {
		if len(c.order) >= c.maxCache {
			delete(c.cache, c.order[c.cacheHead])
			c.order[c.cacheHead] = key
			c.cacheHead++
			if c.cacheHead == len(c.order) {
				c.cacheHead = 0
			}
		} else {
			c.order = append(c.order, key)
		}
		tally = &coTally{counts: make([]int32, c.g.NumNodes())}
		c.cache[key] = tally
	}
	return tally
}

// estimate converts a tally into the caller-owned estimate vector, with
// the exact float operations conn.MonteCarlo uses (multiply by the
// reciprocal), so coordinator estimates are bit-identical to local ones.
// The caller holds tally.mu.
func (tally *coTally) estimate() []float64 {
	out := make([]float64, len(tally.counts))
	inv := 1 / float64(tally.rDone)
	for i, cnt := range tally.counts {
		out[i] = float64(cnt) * inv
	}
	return out
}

// FromCenter implements conn.Oracle.
func (c *Coordinator) FromCenter(ctr graph.NodeID, depth int, r int) []float64 {
	out, _ := c.FromCenterCtx(context.Background(), ctr, depth, r)
	return out
}

// FromCenters implements conn.Oracle.
func (c *Coordinator) FromCenters(cs []graph.NodeID, depth int, r int) [][]float64 {
	out, _ := c.FromCentersCtx(context.Background(), cs, depth, r)
	return out
}

// FromCenterCtx implements conn.ContextOracle.
func (c *Coordinator) FromCenterCtx(ctx context.Context, ctr graph.NodeID, depth int, r int) ([]float64, error) {
	out, err := c.FromCentersCtx(ctx, []graph.NodeID{ctr}, depth, r)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// coSlot tracks one distinct (center, depth) of a batch.
type coSlot struct {
	key   coKey
	tally *coTally
	outAt []int
}

// FromCentersCtx implements conn.ContextOracle: per-center estimate
// vectors over the first r worlds (or more, when a cached tally already
// covers more — the same higher-precision contract as conn.MonteCarlo).
// Pending tallies are extended by scattering only their missing world
// range; tallies at different progress levels scatter as separate rounds,
// and every gathered count lands in a scratch buffer that is folded into
// the cache only when its round fully succeeds — cancellation and worker
// failures withhold answers, never corrupt tallies.
func (c *Coordinator) FromCentersCtx(ctx context.Context, cs []graph.NodeID, depth int, r int) ([][]float64, error) {
	if !c.Sharded() {
		return c.local.FromCentersCtx(ctx, cs, depth, r)
	}
	if len(cs) == 0 {
		return nil, nil
	}
	if r < 1 {
		r = 1
	}
	if depth < 0 {
		depth = conn.Unlimited
	}

	// Deduplicate centers, preserving first-occurrence order (duplicates
	// share one tally and one scatter slot).
	slots := make([]*coSlot, 0, len(cs))
	byKey := make(map[coKey]*coSlot, len(cs))
	for i, ctr := range cs {
		key := coKey{c: ctr, depth: depth}
		sl := byKey[key]
		if sl == nil {
			sl = &coSlot{key: key}
			byKey[key] = sl
			slots = append(slots, sl)
		}
		sl.outAt = append(sl.outAt, i)
	}
	for _, sl := range slots {
		sl.tally = c.lookupTally(sl.key)
	}

	// Lock in canonical center order so concurrent overlapping batches
	// cannot deadlock (same discipline as conn.MonteCarlo).
	locked := make([]*coSlot, len(slots))
	copy(locked, slots)
	sort.Slice(locked, func(i, j int) bool { return locked[i].key.c < locked[j].key.c })
	for _, sl := range locked {
		sl.tally.mu.Lock()
	}
	defer func() {
		for _, sl := range locked {
			sl.tally.mu.Unlock()
		}
	}()

	// Group pending slots by their current progress: each distinct rDone
	// needs a different world range, and within a group one scatter
	// answers every center.
	groups := make(map[int][]*coSlot)
	for _, sl := range slots {
		if sl.tally.rDone < r {
			groups[sl.tally.rDone] = append(groups[sl.tally.rDone], sl)
		}
	}
	los := make([]int, 0, len(groups))
	for lo := range groups {
		los = append(los, lo)
	}
	sort.Ints(los)
	n := c.g.NumNodes()
	for _, lo := range los {
		group := groups[lo]
		centers := make([]graph.NodeID, len(group))
		for j, sl := range group {
			centers[j] = sl.key.c
		}
		kind := KindConnected
		reqDepth := 0
		if depth >= 0 {
			kind = KindWithin
			reqDepth = depth
		}
		scratch := make([]int32, len(group)*n)
		var mergeMu sync.Mutex
		err := c.scatter(ctx, TallyRequest{
			Kind:    kind,
			Centers: centers,
			Depth:   reqDepth,
		}, lo, r, func(resp *TallyResponse) {
			mergeMu.Lock()
			defer mergeMu.Unlock()
			for j := range group {
				row := scratch[j*n : (j+1)*n]
				for u, cnt := range resp.Counts[j] {
					row[u] += cnt
				}
			}
		})
		if err != nil {
			return nil, err
		}
		for j, sl := range group {
			row := scratch[j*n : (j+1)*n]
			for u, cnt := range row {
				sl.tally.counts[u] += cnt
			}
			sl.tally.rDone = r
		}
	}

	out := make([][]float64, len(cs))
	for _, sl := range slots {
		est := sl.tally.estimate()
		for i, pos := range sl.outAt {
			if i == 0 {
				out[pos] = est
			} else {
				cp := make([]float64, len(est))
				copy(cp, est)
				out[pos] = cp
			}
		}
	}
	return out, nil
}

// Pair estimates Pr(u ~ v) with r samples.
func (c *Coordinator) Pair(u, v graph.NodeID, r int) float64 {
	p, _ := c.PairCtx(context.Background(), u, v, r)
	return p
}

// PairCtx estimates Pr(u ~ v) over the first r worlds by scattering the
// pair tally (bit-identical to conn.MonteCarlo.PairCtx: same integer
// count, same division).
func (c *Coordinator) PairCtx(ctx context.Context, u, v graph.NodeID, r int) (float64, error) {
	if !c.Sharded() {
		return c.local.PairCtx(ctx, u, v, r)
	}
	var (
		mu  sync.Mutex
		cnt int64
	)
	err := c.scatter(ctx, TallyRequest{Kind: KindPair, U: u, V: v}, 0, r, func(resp *TallyResponse) {
		mu.Lock()
		cnt += resp.Count
		mu.Unlock()
	})
	if err != nil {
		return 0, err
	}
	return float64(cnt) / float64(r), nil
}

// ---- k-NN distance distributions ----------------------------------------

// DistancesCtx computes the hop-distance distribution from src over the
// first r worlds by scattering per-node histogram tallies — the sharded
// form of knn.SampleStoreCtx, merged with knn's own order-free Merge, so
// the distribution (and every measure derived from it) is identical to the
// local computation.
func (c *Coordinator) DistancesCtx(ctx context.Context, src graph.NodeID, r int) (*knn.DistanceDistribution, error) {
	if !c.Sharded() {
		return knn.SampleStoreCtx(ctx, c.store, src, r)
	}
	n := c.g.NumNodes()
	dd := &knn.DistanceDistribution{
		Source:      src,
		R:           r,
		Hist:        make([]map[int32]int, n),
		Unreachable: make([]int, n),
	}
	for v := range dd.Hist {
		dd.Hist[v] = make(map[int32]int, 8)
	}
	var mu sync.Mutex
	err := c.scatter(ctx, TallyRequest{Kind: KindDistances, Source: src}, 0, r, func(resp *TallyResponse) {
		mu.Lock()
		defer mu.Unlock()
		for v := 0; v < n; v++ {
			for _, b := range resp.Hist[v] {
				dd.Hist[v][b.D] += int(b.N)
			}
			dd.Unreachable[v] += int(resp.Unreachable[v])
		}
	})
	if err != nil {
		return nil, err
	}
	return dd, nil
}

// ---- influence spread ----------------------------------------------------

// SpreadCtx estimates the expected influence spread of seeds over the
// first r worlds — the sharded influence.SpreadCtx.
func (c *Coordinator) SpreadCtx(ctx context.Context, seeds []graph.NodeID, r int) (float64, error) {
	if !c.Sharded() {
		return influence.SpreadCtx(ctx, c.store, seeds, r)
	}
	if len(seeds) == 0 {
		return 0, ctx.Err()
	}
	total, err := c.spreadTally(ctx, KindSpread, seeds, nil, r)
	if err != nil {
		return 0, err
	}
	return float64(total[0]) / float64(r), nil
}

// spreadTally scatters one spread/marginal tally and gathers the summed
// totals.
func (c *Coordinator) spreadTally(ctx context.Context, kind string, seeds, candidates []graph.NodeID, r int) ([]int64, error) {
	width := 1
	if kind == KindMarginal {
		if width = len(candidates); width == 0 {
			width = c.g.NumNodes() // empty candidates = all nodes
		}
	}
	totals := make([]int64, width)
	var mu sync.Mutex
	err := c.scatter(ctx, TallyRequest{Kind: kind, Seeds: seeds, Candidates: candidates}, 0, r, func(resp *TallyResponse) {
		mu.Lock()
		for i, t := range resp.Totals {
			totals[i] += t
		}
		mu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	return totals, nil
}

// coordEvaluator drives influence.GreedyEval with scattered marginal
// tallies: the seed set lives on the coordinator and travels with every
// request, so workers stay stateless.
type coordEvaluator struct {
	c     *Coordinator
	r     int
	seeds []graph.NodeID
}

func (ev *coordEvaluator) InitialGains(ctx context.Context) ([]int64, error) {
	// nil candidates is the wire's "all nodes" marker (KindMarginal):
	// the initial round gets one total per node without shipping n IDs.
	return ev.c.spreadTally(ctx, KindMarginal, nil, nil, ev.r)
}

func (ev *coordEvaluator) MarginalGain(ctx context.Context, v graph.NodeID) (int64, error) {
	totals, err := ev.c.spreadTally(ctx, KindMarginal, ev.seeds, []graph.NodeID{v}, ev.r)
	if err != nil {
		return 0, err
	}
	return totals[0], nil
}

func (ev *coordEvaluator) Picked(_ context.Context, v graph.NodeID) error {
	ev.seeds = append(ev.seeds, v)
	return nil
}

// GreedyCtx runs the CELF greedy influence maximization with scattered
// marginal-gain tallies — the sharded influence.GreedyCtx. Because the
// scattered tallies are the same integers the local evaluator computes,
// the selected seeds, spreads and evaluation counts are identical.
func (c *Coordinator) GreedyCtx(ctx context.Context, k, r int) (*influence.Result, error) {
	if !c.Sharded() {
		return influence.GreedyCtx(ctx, c.store, k, r)
	}
	return influence.GreedyEval(ctx, c.g.NumNodes(), k, r, &coordEvaluator{c: c, r: r})
}
