package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ucgraph/internal/conn"
	"ucgraph/internal/faultinject"
	"ucgraph/internal/graph"
)

// statsFor returns the WorkerStats row for addr.
func statsFor(t *testing.T, coord *Coordinator, addr string) WorkerStats {
	t.Helper()
	for _, st := range coord.WorkerStats() {
		if st.Addr == addr {
			return st
		}
	}
	t.Fatalf("no stats for worker %s", addr)
	return WorkerStats{}
}

// TestBreakerTripsAndRecovers kills one worker mid-fleet: its circuit
// breaker trips after the configured consecutive failures (visible in the
// worker and fabric stats), queries keep answering bit-identically off
// the survivor, and once the worker revives a successful ping closes the
// breaker and it serves again.
func TestBreakerTripsAndRecovers(t *testing.T) {
	g := testGraph(t, 64, 33)
	const seed = 17
	workers := startWorkers(t, "tg", g, seed, 2)
	proxy := newChaosProxy(t, workers[0])

	local := conn.NewMonteCarlo(g, seed)
	coord := NewCoordinator("tg", g, seed, []string{proxy.URL(), workers[1]}, CoordinatorOptions{
		Retries:          3,
		RequestTimeout:   5 * time.Second,
		BreakerThreshold: 1,
		BreakerBackoff:   50 * time.Millisecond,
	})
	centers := []graph.NodeID{2, 40}

	proxy.SetDown(true)
	want := local.FromCenters(centers, conn.Unlimited, 600)
	got, err := coord.FromCentersCtx(context.Background(), centers, conn.Unlimited, 600)
	if err != nil {
		t.Fatalf("query with a dead worker: %v", err)
	}
	for i := range want {
		sameFloats(t, "dead worker", got[i], want[i])
	}
	st := statsFor(t, coord, proxy.URL())
	if st.BreakerTrips == 0 {
		t.Fatal("breaker never tripped for the dead worker")
	}
	if fs := coord.FabricStats(); fs.BreakerTrips == 0 {
		t.Fatal("fabric BreakerTrips = 0 after a trip")
	}

	// Revive: a passing ping closes the breaker and restores assignment.
	proxy.SetDown(false)
	if err := coord.Ping(context.Background()); err != nil {
		t.Fatalf("ping after revival: %v", err)
	}
	st = statsFor(t, coord, proxy.URL())
	if st.BreakerOpen {
		t.Fatal("breaker still open after a successful ping")
	}
	if st.State != "up" {
		t.Fatalf("revived worker state = %q, want up", st.State)
	}
	served := st.WorldsServed
	got, err = coord.FromCentersCtx(context.Background(), centers, conn.Unlimited, 2000)
	if err != nil {
		t.Fatalf("query after revival: %v", err)
	}
	want = local.FromCenters(centers, conn.Unlimited, 2000)
	for i := range want {
		sameFloats(t, "after revival", got[i], want[i])
	}
	if st = statsFor(t, coord, proxy.URL()); st.WorldsServed == served {
		t.Fatal("revived worker served nothing after its breaker closed")
	}
}

// TestFlapQuarantineStickyUntilOperatorReadd quarantines a flapping
// worker (trip bar 1 for the test) and checks quarantine is sticky: pings
// do not revive it, only an operator AddWorker does — after which queries
// stripe to it again, bit-identically.
func TestFlapQuarantineStickyUntilOperatorReadd(t *testing.T) {
	g := testGraph(t, 48, 39)
	const seed = 23
	workers := startWorkers(t, "tg", g, seed, 2)
	proxy := newChaosProxy(t, workers[0])

	local := conn.NewMonteCarlo(g, seed)
	coord := NewCoordinator("tg", g, seed, []string{proxy.URL(), workers[1]}, CoordinatorOptions{
		Retries:          3,
		RequestTimeout:   5 * time.Second,
		BreakerThreshold: 1,
		QuarantineTrips:  1,
		QuarantineWindow: time.Minute,
	})
	centers := []graph.NodeID{1, 30}

	proxy.SetDown(true)
	want := local.FromCenters(centers, conn.Unlimited, 500)
	got, err := coord.FromCentersCtx(context.Background(), centers, conn.Unlimited, 500)
	if err != nil {
		t.Fatalf("query during flap: %v", err)
	}
	for i := range want {
		sameFloats(t, "during flap", got[i], want[i])
	}
	if st := statsFor(t, coord, proxy.URL()); st.State != "quarantined" {
		t.Fatalf("flapping worker state = %q, want quarantined", st.State)
	}
	if fs := coord.FabricStats(); fs.Quarantines != 1 {
		t.Fatalf("fabric Quarantines = %d, want 1", fs.Quarantines)
	}

	// Quarantine is sticky against pings: the worker is healthy again, but
	// only an operator may vouch for it.
	proxy.SetDown(false)
	_ = coord.Ping(context.Background())
	if st := statsFor(t, coord, proxy.URL()); st.State != "quarantined" {
		t.Fatalf("ping revived a quarantined worker: state = %q", st.State)
	}

	coord.AddWorker(proxy.URL())
	if st := statsFor(t, coord, proxy.URL()); st.State != "up" {
		t.Fatalf("worker state after operator re-add = %q, want up", st.State)
	}
	got, err = coord.FromCentersCtx(context.Background(), centers, conn.Unlimited, 1500)
	if err != nil {
		t.Fatalf("query after re-add: %v", err)
	}
	want = local.FromCenters(centers, conn.Unlimited, 1500)
	for i := range want {
		sameFloats(t, "after re-add", got[i], want[i])
	}
}

// TestCorruptFrameDetectedAndRescattered flips one bit in a worker's
// tally response at the TCP layer: the CRC32-C trailer catches it, the
// corrupt frame is never merged, the group re-scatters exactly once, and
// the final estimates stay bit-identical to a fault-free local run.
func TestCorruptFrameDetectedAndRescattered(t *testing.T) {
	g := testGraph(t, 64, 45)
	const seed = 29
	workers := startWorkers(t, "tg", g, seed, 2)
	proxy := newChaosProxy(t, workers[0])

	local := conn.NewMonteCarlo(g, seed)
	coord := NewCoordinator("tg", g, seed, []string{proxy.URL(), workers[1]}, CoordinatorOptions{
		Retries:        3,
		RequestTimeout: 5 * time.Second,
	})

	// Establish the stream with a clean query so the next backend->client
	// chunk is a tally frame, not the 101 upgrade handshake.
	warm := []graph.NodeID{3}
	if _, err := coord.FromCentersCtx(context.Background(), warm, conn.Unlimited, 200); err != nil {
		t.Fatalf("warm query: %v", err)
	}

	proxy.CorruptNext(1)
	centers := []graph.NodeID{7, 51}
	want := local.FromCenters(centers, conn.Unlimited, 800)
	got, err := coord.FromCentersCtx(context.Background(), centers, conn.Unlimited, 800)
	if err != nil {
		t.Fatalf("query with a corrupted response: %v", err)
	}
	for i := range want {
		sameFloats(t, "corrupted response", got[i], want[i])
	}

	if n := proxy.Counters().Corruptions; n != 1 {
		t.Fatalf("proxy injected %d corruptions, want 1 (test setup)", n)
	}
	fs := coord.FabricStats()
	if fs.IntegrityRejects != 1 {
		t.Fatalf("IntegrityRejects = %d, want exactly 1", fs.IntegrityRejects)
	}
	if fs.Rescatters == 0 {
		t.Fatal("corrupt frame was not re-scattered")
	}
	if st := statsFor(t, coord, proxy.URL()); st.IntegrityRejects != 1 {
		t.Fatalf("worker IntegrityRejects = %d, want 1", st.IntegrityRejects)
	}
}

// TestAuditCleanRunNoDivergence turns sampled audits all the way up
// (fraction 1): every scatter group is re-executed on the second worker
// and compared byte-for-byte. Honest workers agree, so audits count up,
// divergences stay zero, nobody is quarantined, and the answer is
// bit-identical to local.
func TestAuditCleanRunNoDivergence(t *testing.T) {
	g := testGraph(t, 64, 51)
	const seed = 37
	workers := startWorkers(t, "tg", g, seed, 2)

	local := conn.NewMonteCarlo(g, seed)
	coord := NewCoordinator("tg", g, seed, workers, CoordinatorOptions{
		RequestTimeout: 5 * time.Second,
		AuditFraction:  1,
	})
	centers := []graph.NodeID{4, 19, 60}
	want := local.FromCenters(centers, conn.Unlimited, 700)
	got, err := coord.FromCentersCtx(context.Background(), centers, conn.Unlimited, 700)
	if err != nil {
		t.Fatalf("audited query: %v", err)
	}
	for i := range want {
		sameFloats(t, "audited query", got[i], want[i])
	}
	fs := coord.FabricStats()
	if fs.Audits == 0 {
		t.Fatal("AuditFraction=1 ran zero audits")
	}
	if fs.AuditDivergences != 0 {
		t.Fatalf("honest workers diverged %d time(s)", fs.AuditDivergences)
	}
	if fs.Quarantines != 0 {
		t.Fatalf("clean audit quarantined %d worker(s)", fs.Quarantines)
	}
	for _, st := range coord.WorkerStats() {
		if st.State != "up" {
			t.Fatalf("worker %s state = %q after clean audits", st.Addr, st.State)
		}
	}
}

// TestChaosSeededScheduleBitIdentical is the nightly chaos suite: a
// seeded schedule of connection kills, delays and bit corruption plays
// against every worker of a 3-worker fleet while a query series runs.
// The standing invariant under any fault mix: a query either fails
// loudly or returns estimates bit-identical to the fault-free local run
// — never a silently wrong answer. The chaos seed is logged so a failure
// replays exactly with CHAOS_SEED=<seed>.
func TestChaosSeededScheduleBitIdentical(t *testing.T) {
	chaosSeed := faultinject.TestSeed(t.Logf)
	g := testGraph(t, 64, 63)
	const seed = 47
	workers := startWorkers(t, "tg", g, seed, 3)
	proxies := make([]*faultinject.Proxy, len(workers))
	addrs := make([]string, len(workers))
	for i, wa := range workers {
		p := newChaosProxy(t, wa)
		p.SetSchedule(faultinject.Schedule{
			Seed:         chaosSeed + uint64(i),
			KillEvery:    41,
			CorruptEvery: 23,
			DelayEvery:   11,
			Delay:        2 * time.Millisecond,
		})
		proxies[i] = p
		addrs[i] = p.URL()
	}
	local := conn.NewMonteCarlo(g, seed)
	coord := NewCoordinator("tg", g, seed, addrs, CoordinatorOptions{
		Retries:        6,
		RequestTimeout: 5 * time.Second,
		AuditFraction:  0.25,
		// The suite hammers every worker on purpose; flap quarantine would
		// (correctly) sideline the whole fleet and starve the later rounds.
		QuarantineTrips: -1,
	})
	centers := []graph.NodeID{2, 17, 45}
	loud := 0
	const rounds = 8
	for round := 1; round <= rounds; round++ {
		samples := 200 * round // growing budgets extend cached tallies too
		got, err := coord.FromCentersCtx(context.Background(), centers, conn.Unlimited, samples)
		if err != nil {
			loud++ // a loud failure is an acceptable chaos outcome
			continue
		}
		want := local.FromCenters(centers, conn.Unlimited, samples)
		for i := range want {
			sameFloats(t, fmt.Sprintf("chaos round %d", round), got[i], want[i])
		}
	}
	var injected faultinject.Counters
	for _, p := range proxies {
		c := p.Counters()
		injected.Conns += c.Conns
		injected.Kills += c.Kills
		injected.Delays += c.Delays
		injected.Corruptions += c.Corruptions
	}
	fs := coord.FabricStats()
	t.Logf("chaos: %d/%d rounds failed loudly; injected %+v; fabric %+v", loud, rounds, injected, fs)
	if loud == rounds {
		t.Fatalf("every chaos round failed (seed %d): the fabric absorbed nothing", chaosSeed)
	}
	if injected.Kills+injected.Corruptions+injected.Delays == 0 {
		t.Fatalf("schedule injected no faults (seed %d): the suite proved nothing", chaosSeed)
	}
}

// TestWorkerDrainFinishesInFlightStream drains a worker while a scattered
// tally is in flight: the open round completes (and merges into a
// bit-identical answer), then the worker's hijacked streams are severed,
// its healthz flips to 503 draining, and new queries are refused.
func TestWorkerDrainFinishesInFlightStream(t *testing.T) {
	g := testGraph(t, 64, 57)
	const seed = 41
	w, err := NewWorker([]WorkerGraph{{Name: "tg", Graph: g, Seed: seed}}, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(w)
	t.Cleanup(ts.Close)

	local := conn.NewMonteCarlo(g, seed)
	coord := NewCoordinator("tg", g, seed, []string{ts.URL}, CoordinatorOptions{
		RequestTimeout: 30 * time.Second,
	})
	centers := []graph.NodeID{5, 22, 48}
	const samples = 200_000 // big enough for the tally to span the drain call

	type result struct {
		got [][]float64
		err error
	}
	done := make(chan result, 1)
	go func() {
		got, err := coord.FromCentersCtx(context.Background(), centers, conn.Unlimited, samples)
		done <- result{got, err}
	}()
	time.Sleep(30 * time.Millisecond) // let the scatter take flight

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := w.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight query failed during drain: %v", res.err)
	}
	want := local.FromCenters(centers, conn.Unlimited, samples)
	for i := range want {
		sameFloats(t, "drained round", res.got[i], want[i])
	}

	// Drained worker: healthz 503, tally refused, stream upgrade refused.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || health.Status != "draining" {
		t.Fatalf("drained healthz = %d %q, want 503 draining", resp.StatusCode, health.Status)
	}
	if _, err := coord.FromCentersCtx(context.Background(), []graph.NodeID{9}, conn.Unlimited, 100); err == nil {
		t.Fatal("query succeeded against a drained worker")
	} else if !strings.Contains(err.Error(), "draining") {
		t.Fatalf("drained-worker error does not say draining: %v", err)
	}
}
