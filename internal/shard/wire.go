// Package shard turns the single-process world store into the backend of a
// multi-machine deployment: shard workers own a worldstore.Store each and
// serve raw integer tallies over assigned world-index ranges, and a
// coordinator implements the estimator surface (the conn.ContextOracle the
// clustering drivers consume, plus the k-NN distance, influence-spread and
// network-reliability tallies) by scattering disjoint block-aligned range
// requests to N workers, gathering the per-range integer tallies and
// summing them.
//
// The whole design leans on one property of the world stream: every world
// is a pure function of (seed, index), and every estimator in this
// repository reduces to integer tallies summed over independently sampled
// worlds. Integer addition is associative and commutative, so any disjoint
// cover of a world range — one worker, four workers, a retried re-scatter
// after a worker died, a hedged duplicate suppressed by the range-ownership
// bookkeeping — merges to exactly the same totals, and therefore to
// bit-identical estimates. The coordinator never approximates: a failed
// worker's ranges are re-scattered and counted exactly once, a cancelled
// query returns an error and no estimate, and with no workers configured
// every query falls back to the in-process estimator over the same
// (graph, seed) stream.
//
// Two wire protocols coexist (see docs/SHARD_PROTOCOL.md for the spec):
//
//   - v2 (the coordinator's transport): length-prefixed little-endian
//     binary frames multiplexed over one long-lived connection per worker,
//     established by upgrading POST /shard/v2/stream. A scatter round is
//     one frame write + one frame read per worker; tallies travel as flat
//     int32/int64 payloads with no per-round connection or header cost.
//   - v1 (frozen, kept for old clients and for debugging with curl): one
//     JSON POST /shard/v1/tally per request. Both versions answer from the
//     same tally computation and the same worker-side cache, so they are
//     interchangeable bit for bit.
//
// GET /shard/v1/ping (JSON) remains the identity/health probe of both.
// Workers are stateless with respect to the partitioning — any worker can
// serve any range of the stream it owns a store for — which is what makes
// retry-by-re-scatter, hedging and elastic membership safe, and deployment
// trivial (every worker process is started the same way, with the same
// graphs and seed).
package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Tally kinds: the integer-tally shapes workers can compute over a world
// range. Each corresponds to one estimator surface of the library. The
// string values are the v1 JSON encoding; the v2 binary wire carries the
// one-byte codes from kindCode (see docs/SHARD_PROTOCOL.md §4).
const (
	// KindConnected tallies, per center and node, the worlds where the
	// node shares a component with the center (unlimited-depth connection
	// counts; label scans).
	KindConnected = "connected"
	// KindWithin is the depth-limited form of KindConnected (edge-bitmap
	// BFS within Depth hops).
	KindWithin = "within"
	// KindPair tallies the worlds where nodes U and V share a component.
	KindPair = "pair"
	// KindDistances tallies, per node, the hop-distance histogram from
	// Source (the k-NN distance distribution).
	KindDistances = "distances"
	// KindSpread tallies the (world, node) pairs where the node shares a
	// component with at least one of Seeds (influence spread).
	KindSpread = "spread"
	// KindMarginal tallies, per candidate, the marginal influence spread
	// given the Seeds already picked (the greedy maximization's inner
	// query; empty Seeds gives the initial round). Empty Candidates means
	// "every node, in node order" — the initial round asks about all n
	// nodes, and shipping n IDs per scatter request would dwarf the
	// tallies themselves on large graphs.
	KindMarginal = "marginal"
	// KindReliability tallies the worlds where every node of Seeds lies in
	// one connected component (k-terminal reliability; the set travels in
	// the Seeds field). Empty Seeds means "all nodes" — all-terminal
	// reliability without shipping n IDs.
	KindReliability = "reliability"
	// KindComponents tallies the total number of connected components
	// summed over the requested worlds.
	KindComponents = "components"
	// KindLargest tallies the total size of the largest connected
	// component summed over the requested worlds.
	KindLargest = "largest"
)

// Wire paths of the worker protocol.
const (
	PathPing   = "/shard/v1/ping"
	PathTally  = "/shard/v1/tally"
	PathStream = "/shard/v2/stream"
)

// StreamProtocol is the value of the Upgrade header that switches a
// POST /shard/v2/stream request into the binary frame protocol.
const StreamProtocol = "ucgraph-shard/2"

// Range is a half-open interval [Lo, Hi) of world indices of the seeded
// stream.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Worlds returns the number of worlds the range covers.
func (r Range) Worlds() int { return r.Hi - r.Lo }

// TallyRequest is one tally computation: one Kind of integer tally for
// graph Graph over every world in Ranges. Which other fields apply depends
// on Kind (see the Kind constants). It is the body of the v1 JSON POST and
// the payload of a v2 REQ frame.
type TallyRequest struct {
	Graph      string  `json:"graph"`
	Kind       string  `json:"kind"`
	Ranges     []Range `json:"ranges"`
	Centers    []int32 `json:"centers,omitempty"`    // connected, within
	Depth      int     `json:"depth,omitempty"`      // within
	U          int32   `json:"u,omitempty"`          // pair
	V          int32   `json:"v,omitempty"`          // pair
	Source     int32   `json:"source,omitempty"`     // distances
	Seeds      []int32 `json:"seeds,omitempty"`      // spread, marginal, reliability
	Candidates []int32 `json:"candidates,omitempty"` // marginal; empty = all nodes
}

// DistCount is one histogram bucket of a distance tally: N worlds at hop
// distance D.
type DistCount struct {
	D int32 `json:"d"`
	N int64 `json:"n"`
}

// TallyResponse carries the raw integer tallies of one request. All
// payloads are plain counts over the requested worlds, so responses from
// disjoint ranges merge by field-wise addition, in any order.
type TallyResponse struct {
	// Worlds is the total number of worlds tallied (the sum of the
	// request's range sizes) — the coordinator cross-checks it against
	// what it asked for.
	Worlds int `json:"worlds"`
	// Counts is the per-center, per-node world counts of KindConnected
	// and KindWithin: Counts[j][u] counts worlds where node u is
	// (depth-)connected to Centers[j].
	Counts [][]int32 `json:"counts,omitempty"`
	// Count is the scalar tally of KindPair.
	Count int64 `json:"count,omitempty"`
	// Totals is the per-candidate tally of KindMarginal (aligned with
	// Candidates) and the single-element tally of KindSpread,
	// KindReliability, KindComponents and KindLargest.
	Totals []int64 `json:"totals,omitempty"`
	// Hist and Unreachable are the per-node distance histograms and
	// unreachable-world counts of KindDistances. Hist[u] buckets are
	// sorted by distance.
	Hist        [][]DistCount `json:"hist,omitempty"`
	Unreachable []int64       `json:"unreachable,omitempty"`
}

// PingGraph describes one graph a worker serves, so the coordinator can
// verify both sides talk about the same world stream before trusting the
// worker's tallies.
type PingGraph struct {
	Name        string `json:"name"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	Seed        uint64 `json:"seed"`
	BlockWorlds int    `json:"block_worlds"`
	Worlds      int    `json:"worlds"`
}

// PingResponse is the body of GET /shard/v1/ping.
type PingResponse struct {
	Graphs []PingGraph `json:"graphs"`
}

// errorResponse is the JSON error body of a failed v1 worker request.
type errorResponse struct {
	Error string `json:"error"`
}

// ---- v2 binary frame codec ----------------------------------------------
//
// Everything below implements the frame layout specified (with byte
// offsets and a worked hex example) in docs/SHARD_PROTOCOL.md. All
// multi-byte integers are little-endian. A frame is
//
//	u32 length | u8 version | u8 type | u16 flags | u64 id | body
//
// where length counts every byte after the length field itself (so a
// frame occupies 4+length bytes and the body length-12).

// wireVersion is the protocol version byte of every v2 frame.
const wireVersion = 2

// Frame types.
const (
	frameReq    = 1 // coordinator -> worker: a TallyRequest
	frameResp   = 2 // worker -> coordinator: the TallyResponse
	frameErr    = 3 // worker -> coordinator: the request failed
	frameCancel = 4 // coordinator -> worker: abandon the request id
)

// Frame flags.
const (
	// flagCached marks a RESP frame whose every range was served from the
	// worker's tally cache (no world was recomputed).
	flagCached = 1 << 0
	// flagChecksum marks a frame carrying a CRC32-C (Castagnoli) trailer:
	// the last 4 bytes of the body are the little-endian checksum of every
	// body byte before them. Flag-gated for version compat — the worker
	// advertises support in its 101 upgrade response and each side seals
	// frames only for peers that negotiated it, so old and new binaries
	// interoperate mid-rollout.
	flagChecksum = 1 << 1
	// flagTrace marks a frame carrying trace sections, negotiated exactly
	// like flagChecksum (the worker advertises X-Ucgraph-Trace on its 101
	// upgrade response) so mixed fleets interoperate. On a REQ the body
	// ends with a 16-byte trace ref (trace ID + parent span ID); on a RESP
	// it ends with a fixed worker-annotation section (timing, cache and
	// world-store tier attribution). Both sections sit BEFORE the checksum
	// trailer (sealFrame runs last, so the CRC covers them) and AFTER the
	// canonical body — the canonical request bytes double as worker cache
	// keys and must stay byte-identical whether or not a query is traced:
	// tracing observes, never alters.
	flagTrace = 1 << 2
)

// Error frame codes.
const (
	errCodeBadRequest   = 1 // malformed or out-of-range request
	errCodeUnknownGraph = 2 // worker does not serve the named graph
	errCodeCanceled     = 3 // the request's context was cancelled
	errCodeInternal     = 4 // anything else
	errCodeIntegrity    = 5 // frame failed its CRC32-C check
)

// ChecksumAlgorithm is the value of the checksum-negotiation header
// (X-Ucgraph-Checksum) the worker sends on its 101 upgrade response; a
// coordinator seeing it seals REQ frames, and the worker mirrors the seal
// on each response.
const ChecksumAlgorithm = "crc32c"

// TraceVersion is the value of the trace-negotiation header
// (X-Ucgraph-Trace) the worker sends on its 101 upgrade response. A
// coordinator seeing it may set flagTrace on REQ frames of traced
// queries; the worker mirrors the flag on each such response, attaching
// its annotation section.
const TraceVersion = "1"

// wireCRC is the Castagnoli table — the same polynomial the world store's
// disk tier uses, closing the one unprotected hop (the network) between
// checksummed storage and the merge step.
var wireCRC = crc32.MakeTable(crc32.Castagnoli)

// Wire limits. Decoders reject frames past these bounds before allocating,
// so a corrupt or adversarial peer cannot make either side allocate
// unbounded memory.
const (
	maxFrameLen  = 1 << 28 // 256 MiB: > any tally payload this repo can produce
	maxWireName  = 1 << 10 // graph names
	maxWireNodes = 1 << 26 // node-ID lists (centers/seeds/candidates)
	maxWireItems = 1 << 26 // ranges, histogram buckets, count rows
)

// kindCode maps the Kind strings onto their one-byte v2 wire codes; codes
// are append-only (compat rule: a code never changes meaning across
// versions).
var kindCode = map[string]byte{
	KindConnected:   1,
	KindWithin:      2,
	KindPair:        3,
	KindDistances:   4,
	KindSpread:      5,
	KindMarginal:    6,
	KindReliability: 7,
	KindComponents:  8,
	KindLargest:     9,
}

// codeKind is the inverse of kindCode.
var codeKind = func() map[byte]string {
	m := make(map[byte]string, len(kindCode))
	for k, c := range kindCode {
		m[c] = k
	}
	return m
}()

// frameHeader is the fixed 12-byte header following the length prefix.
type frameHeader struct {
	ftype byte
	flags uint16
	id    uint64
}

// appendHeader reserves the length prefix and writes the fixed header;
// finishFrame back-fills the length.
func appendHeader(buf []byte, ftype byte, flags uint16, id uint64) []byte {
	buf = append(buf, 0, 0, 0, 0) // length, filled by finishFrame
	buf = append(buf, wireVersion, ftype)
	buf = binary.LittleEndian.AppendUint16(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	return buf
}

// finishFrame back-fills the length prefix of the frame starting at off.
func finishFrame(buf []byte, off int) []byte {
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(buf)-off-4))
	return buf
}

func appendU32(buf []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(buf, v) }
func appendI32(buf []byte, v int32) []byte  { return binary.LittleEndian.AppendUint32(buf, uint32(v)) }
func appendI64(buf []byte, v int64) []byte  { return binary.LittleEndian.AppendUint64(buf, uint64(v)) }
func appendNodes(buf []byte, vs []int32) []byte {
	buf = appendU32(buf, uint32(len(vs)))
	for _, v := range vs {
		buf = appendI32(buf, v)
	}
	return buf
}

// encodeRequestBody encodes req in the canonical v2 layout (without the
// frame header). The canonical bytes double as the worker-side tally-cache
// key, which is why the layout is fixed rather than field-tagged.
func encodeRequestBody(buf []byte, req *TallyRequest) ([]byte, error) {
	code, ok := kindCode[req.Kind]
	if !ok {
		return nil, fmt.Errorf("shard: unknown tally kind %q", req.Kind)
	}
	if len(req.Graph) > maxWireName {
		return nil, fmt.Errorf("shard: graph name longer than %d bytes", maxWireName)
	}
	buf = append(buf, code, 0)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(req.Graph)))
	buf = append(buf, req.Graph...)
	buf = appendI32(buf, int32(req.Depth))
	buf = appendI32(buf, req.U)
	buf = appendI32(buf, req.V)
	buf = appendI32(buf, req.Source)
	buf = appendNodes(buf, req.Centers)
	buf = appendNodes(buf, req.Seeds)
	buf = appendNodes(buf, req.Candidates)
	buf = appendU32(buf, uint32(len(req.Ranges)))
	for _, rg := range req.Ranges {
		if rg.Lo < 0 || rg.Hi < 0 || rg.Lo > math.MaxUint32 || rg.Hi > math.MaxUint32 {
			return nil, fmt.Errorf("shard: range [%d, %d) not encodable", rg.Lo, rg.Hi)
		}
		buf = appendU32(buf, uint32(rg.Lo))
		buf = appendU32(buf, uint32(rg.Hi))
	}
	return buf, nil
}

// encodeRequestFrame encodes a full REQ frame.
func encodeRequestFrame(id uint64, req *TallyRequest) ([]byte, error) {
	buf := appendHeader(nil, frameReq, 0, id)
	buf, err := encodeRequestBody(buf, req)
	if err != nil {
		return nil, err
	}
	return finishFrame(buf, 0), nil
}

// encodeResponseFrame encodes a RESP frame for a request of the given
// kind. cached sets flagCached.
func encodeResponseFrame(id uint64, kind string, cached bool, resp *TallyResponse) []byte {
	var flags uint16
	if cached {
		flags |= flagCached
	}
	buf := appendHeader(nil, frameResp, flags, id)
	buf = append(buf, kindCode[kind], 0, 0, 0)
	buf = appendU32(buf, uint32(resp.Worlds))
	switch kind {
	case KindConnected, KindWithin:
		cols := 0
		if len(resp.Counts) > 0 {
			cols = len(resp.Counts[0])
		}
		buf = appendU32(buf, uint32(len(resp.Counts)))
		buf = appendU32(buf, uint32(cols))
		for _, row := range resp.Counts {
			for _, v := range row {
				buf = appendI32(buf, v)
			}
		}
	case KindPair:
		buf = appendI64(buf, resp.Count)
	case KindSpread, KindMarginal, KindReliability, KindComponents, KindLargest:
		buf = appendU32(buf, uint32(len(resp.Totals)))
		for _, v := range resp.Totals {
			buf = appendI64(buf, v)
		}
	case KindDistances:
		buf = appendU32(buf, uint32(len(resp.Hist)))
		for _, buckets := range resp.Hist {
			buf = appendU32(buf, uint32(len(buckets)))
			for _, b := range buckets {
				buf = appendI32(buf, b.D)
				buf = appendI64(buf, b.N)
			}
		}
		for _, u := range resp.Unreachable {
			buf = appendI64(buf, u)
		}
	}
	return finishFrame(buf, 0)
}

// encodeErrorFrame encodes an ERR frame.
func encodeErrorFrame(id uint64, code uint16, msg string) []byte {
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	buf := appendHeader(nil, frameErr, 0, id)
	buf = binary.LittleEndian.AppendUint16(buf, code)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(msg)))
	buf = append(buf, msg...)
	return finishFrame(buf, 0)
}

// encodeCancelFrame encodes a CANCEL frame (empty body).
func encodeCancelFrame(id uint64) []byte {
	return finishFrame(appendHeader(nil, frameCancel, 0, id), 0)
}

// sealFrame appends a CRC32-C trailer to a finished frame and sets
// flagChecksum, when sum is true; otherwise it returns the frame
// untouched. Sealing happens after encoding so every encoder keeps its
// checksum-free signature (and the canonical request bytes used as cache
// keys stay trailer-free on both sides).
func sealFrame(frame []byte, sum bool) []byte {
	if !sum {
		return frame
	}
	frame = appendU32(frame, crc32.Checksum(frame[16:], wireCRC))
	flags := binary.LittleEndian.Uint16(frame[6:8])
	binary.LittleEndian.PutUint16(frame[6:8], flags|flagChecksum)
	return finishFrame(frame, 0)
}

// verifyBody checks and strips the CRC32-C trailer of a frame body when
// the header carries flagChecksum; bodies without the flag pass through
// (the peer did not negotiate checksums). A mismatch is the wire-level
// bit-rot signal: the caller must reject the frame — never decode, never
// merge.
func verifyBody(h frameHeader, body []byte) ([]byte, error) {
	if h.flags&flagChecksum == 0 {
		return body, nil
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("shard: checksummed frame body too short (%d bytes)", len(body))
	}
	payload, trailer := body[:len(body)-4], body[len(body)-4:]
	want := binary.LittleEndian.Uint32(trailer)
	if got := crc32.Checksum(payload, wireCRC); got != want {
		return nil, fmt.Errorf("shard: frame checksum mismatch (got %08x, want %08x)", got, want)
	}
	return payload, nil
}

// readFrame reads one length-prefixed frame from r, returning the header
// and body. It validates the version and length bound before allocating
// the body.
func readFrame(r io.Reader) (frameHeader, []byte, error) {
	var fixed [16]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return frameHeader{}, nil, err
	}
	length := binary.LittleEndian.Uint32(fixed[0:4])
	if length < 12 || length > maxFrameLen {
		return frameHeader{}, nil, fmt.Errorf("shard: frame length %d out of bounds", length)
	}
	if fixed[4] != wireVersion {
		return frameHeader{}, nil, fmt.Errorf("shard: unsupported wire version %d (want %d)", fixed[4], wireVersion)
	}
	h := frameHeader{
		ftype: fixed[5],
		flags: binary.LittleEndian.Uint16(fixed[6:8]),
		id:    binary.LittleEndian.Uint64(fixed[8:16]),
	}
	body := make([]byte, length-12)
	if _, err := io.ReadFull(r, body); err != nil {
		return frameHeader{}, nil, err
	}
	return h, body, nil
}

// wireReader is a bounds-checked cursor over a frame body.
type wireReader struct {
	buf []byte
	off int
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf)-r.off < n {
		r.fail("shard: truncated frame body (want %d bytes at offset %d of %d)", n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *wireReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wireReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *wireReader) i32() int32 { return int32(r.u32()) }

func (r *wireReader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

// count reads a u32 item count and bounds-checks it against both max and
// the bytes remaining (at least per bytes each), so a corrupt count cannot
// trigger a huge allocation.
func (r *wireReader) count(max, per int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n > max || n*per > len(r.buf)-r.off {
		r.fail("shard: frame item count %d out of bounds", n)
		return 0
	}
	return n
}

func (r *wireReader) nodes() []int32 {
	n := r.count(maxWireNodes, 4)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = r.i32()
	}
	return out
}

func (r *wireReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("shard: %d trailing bytes after frame body", len(r.buf)-r.off)
	}
	return nil
}

// decodeRequestBody parses a canonical v2 request body.
func decodeRequestBody(body []byte) (*TallyRequest, error) {
	r := &wireReader{buf: body}
	code := r.u8()
	r.u8() // reserved
	kind, ok := codeKind[code]
	if !ok && r.err == nil {
		return nil, fmt.Errorf("shard: unknown wire kind code %d", code)
	}
	nameLen := int(r.u16())
	if nameLen > maxWireName {
		return nil, fmt.Errorf("shard: graph name length %d out of bounds", nameLen)
	}
	name := string(r.take(nameLen))
	req := &TallyRequest{Graph: name, Kind: kind}
	req.Depth = int(r.i32())
	req.U = r.i32()
	req.V = r.i32()
	req.Source = r.i32()
	req.Centers = r.nodes()
	req.Seeds = r.nodes()
	req.Candidates = r.nodes()
	nr := r.count(maxWireItems, 8)
	for i := 0; i < nr; i++ {
		lo, hi := r.u32(), r.u32()
		req.Ranges = append(req.Ranges, Range{Lo: int(lo), Hi: int(hi)})
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return req, nil
}

// decodeResponseBody parses a v2 response body. The kind is read from the
// body itself (and cross-checked by the caller against the request).
func decodeResponseBody(body []byte) (kind string, resp *TallyResponse, err error) {
	r := &wireReader{buf: body}
	code := r.u8()
	r.take(3) // reserved
	kind, ok := codeKind[code]
	if !ok && r.err == nil {
		return "", nil, fmt.Errorf("shard: unknown wire kind code %d in response", code)
	}
	resp = &TallyResponse{Worlds: int(r.u32())}
	switch kind {
	case KindConnected, KindWithin:
		rows := r.count(maxWireItems, 4)
		cols := r.count(maxWireItems, 0)
		if r.err == nil && rows*cols*4 > len(r.buf)-r.off {
			r.fail("shard: count matrix %dx%d exceeds frame body", rows, cols)
		}
		if r.err == nil && rows > 0 {
			flat := make([]int32, rows*cols)
			for i := range flat {
				flat[i] = r.i32()
			}
			resp.Counts = make([][]int32, rows)
			for j := range resp.Counts {
				resp.Counts[j] = flat[j*cols : (j+1)*cols : (j+1)*cols]
			}
		}
	case KindPair:
		resp.Count = r.i64()
	case KindSpread, KindMarginal, KindReliability, KindComponents, KindLargest:
		n := r.count(maxWireItems, 8)
		if r.err == nil && n > 0 {
			resp.Totals = make([]int64, n)
			for i := range resp.Totals {
				resp.Totals[i] = r.i64()
			}
		}
	case KindDistances:
		n := r.count(maxWireItems, 4)
		if r.err == nil && n > 0 {
			resp.Hist = make([][]DistCount, n)
			for v := range resp.Hist {
				nb := r.count(maxWireItems, 12)
				if r.err != nil {
					break
				}
				if nb > 0 {
					buckets := make([]DistCount, nb)
					for i := range buckets {
						buckets[i] = DistCount{D: r.i32(), N: r.i64()}
					}
					resp.Hist[v] = buckets
				}
			}
			if r.err == nil {
				resp.Unreachable = make([]int64, n)
				for v := range resp.Unreachable {
					resp.Unreachable[v] = r.i64()
				}
			}
		}
	}
	if err := r.done(); err != nil {
		return "", nil, err
	}
	return kind, resp, nil
}

// ---- flagTrace sections --------------------------------------------------

// traceRefLen is the size of the REQ trace ref: u64 trace ID, u64 parent
// span ID.
const traceRefLen = 16

// workerAnnotLen is the size of the RESP worker-annotation section; see
// workerAnnot for the field layout.
const workerAnnotLen = 56

// traceRef identifies, on the wire, which coordinator trace (and which
// span within it) a REQ belongs to, so worker-side logs correlate with
// coordinator traces without any clock agreement.
type traceRef struct {
	TraceID uint64
	SpanID  uint64
}

// workerAnnot is the worker's self-reported execution annotation for one
// traced request: wall time, worlds tallied, per-request tally-cache
// hits/misses, and the world-store tier activity observed while serving
// it (a Stats snapshot diff — approximate under concurrent requests on
// the same store, and documented as such; the numbers inform operators,
// never estimates). All fields are little-endian on the wire, in
// declaration order.
type workerAnnot struct {
	ElapsedNS        uint64 // worker-side wall time for the request
	Worlds           uint64 // worlds tallied (resp.Worlds)
	CacheHits        uint32 // ranges served from the worker tally cache
	CacheMiss        uint32 // ranges recomputed
	StoreHits        uint64 // RAM-resident world-store block hits
	DiskHits         uint64 // disk-tier block loads
	Recomputes       uint64 // evicted blocks rebuilt from the stream
	Materializations uint64 // first-time block materializations
}

// appendTraceRef appends the 16-byte REQ trace ref.
func appendTraceRef(buf []byte, ref traceRef) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, ref.TraceID)
	return binary.LittleEndian.AppendUint64(buf, ref.SpanID)
}

// appendWorkerAnnot appends the fixed RESP annotation section.
func appendWorkerAnnot(buf []byte, a workerAnnot) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, a.ElapsedNS)
	buf = binary.LittleEndian.AppendUint64(buf, a.Worlds)
	buf = binary.LittleEndian.AppendUint32(buf, a.CacheHits)
	buf = binary.LittleEndian.AppendUint32(buf, a.CacheMiss)
	buf = binary.LittleEndian.AppendUint64(buf, a.StoreHits)
	buf = binary.LittleEndian.AppendUint64(buf, a.DiskHits)
	buf = binary.LittleEndian.AppendUint64(buf, a.Recomputes)
	return binary.LittleEndian.AppendUint64(buf, a.Materializations)
}

// splitTrailer cuts the last n bytes off a (checksum-stripped) body,
// returning the canonical prefix and the trailer.
func splitTrailer(body []byte, n int, what string) (payload, trailer []byte, err error) {
	if len(body) < n {
		return nil, nil, fmt.Errorf("shard: traced frame body too short for %s (%d < %d bytes)", what, len(body), n)
	}
	return body[:len(body)-n], body[len(body)-n:], nil
}

// splitTraceRef strips and decodes the REQ trace ref when h carries
// flagTrace; untraced requests pass through with a zero ref.
func splitTraceRef(h frameHeader, body []byte) ([]byte, traceRef, error) {
	if h.flags&flagTrace == 0 {
		return body, traceRef{}, nil
	}
	payload, tr, err := splitTrailer(body, traceRefLen, "trace ref")
	if err != nil {
		return nil, traceRef{}, err
	}
	return payload, traceRef{
		TraceID: binary.LittleEndian.Uint64(tr[0:8]),
		SpanID:  binary.LittleEndian.Uint64(tr[8:16]),
	}, nil
}

// splitWorkerAnnot strips and decodes the RESP annotation section when h
// carries flagTrace; untraced responses pass through with a nil annot.
func splitWorkerAnnot(h frameHeader, body []byte) ([]byte, *workerAnnot, error) {
	if h.flags&flagTrace == 0 {
		return body, nil, nil
	}
	payload, tr, err := splitTrailer(body, workerAnnotLen, "worker annotation")
	if err != nil {
		return nil, nil, err
	}
	return payload, &workerAnnot{
		ElapsedNS:        binary.LittleEndian.Uint64(tr[0:8]),
		Worlds:           binary.LittleEndian.Uint64(tr[8:16]),
		CacheHits:        binary.LittleEndian.Uint32(tr[16:20]),
		CacheMiss:        binary.LittleEndian.Uint32(tr[20:24]),
		StoreHits:        binary.LittleEndian.Uint64(tr[24:32]),
		DiskHits:         binary.LittleEndian.Uint64(tr[32:40]),
		Recomputes:       binary.LittleEndian.Uint64(tr[40:48]),
		Materializations: binary.LittleEndian.Uint64(tr[48:56]),
	}, nil
}

// setFlag sets a flag bit in a finished frame's header and re-finishes
// the length (a no-op for the length, kept for symmetry with sealFrame).
func setFlag(frame []byte, flag uint16) []byte {
	flags := binary.LittleEndian.Uint16(frame[6:8])
	binary.LittleEndian.PutUint16(frame[6:8], flags|flag)
	return finishFrame(frame, 0)
}

// decodeErrorBody parses an ERR frame body.
func decodeErrorBody(body []byte) (code uint16, msg string, err error) {
	r := &wireReader{buf: body}
	code = r.u16()
	msgLen := int(r.u16())
	msg = string(r.take(msgLen))
	if err := r.done(); err != nil {
		return 0, "", err
	}
	return code, msg, nil
}

// Partition cuts the world range [lo, hi) into block-aligned subranges and
// assigns each to one of nworkers by striping block indices: the block
// with index bi (worlds [bi*blockWorlds, (bi+1)*blockWorlds)) belongs to
// worker (bi + rot) % nworkers. The returned slice has one (possibly
// empty) range list per worker; together the lists cover [lo, hi) exactly
// once, and consecutive blocks owned by the same worker are coalesced into
// one range.
//
// Striping makes ownership static: a given block lands on the same worker
// for every query and every extension of the stream (rot = 0), so workers
// keep serving the block-cached artifacts they already materialized. The
// Coordinator's membership layer starts from exactly this striping and
// then re-stripes ONLY unowned blocks — blocks whose recorded owner has
// left or gone down, or blocks of new stream growth — so a membership
// change never moves a warm block off a live worker. The assignment never
// affects results: the gather step sums integer tallies, which are
// independent of who computed them.
func Partition(lo, hi, blockWorlds, nworkers, rot int) [][]Range {
	parts := make([][]Range, nworkers)
	if lo < 0 {
		lo = 0
	}
	if hi <= lo || nworkers <= 0 || blockWorlds <= 0 {
		return parts
	}
	for bi := lo / blockWorlds; bi*blockWorlds < hi; bi++ {
		w := (bi + rot) % nworkers
		start, end := bi*blockWorlds, (bi+1)*blockWorlds
		if start < lo {
			start = lo
		}
		if end > hi {
			end = hi
		}
		if n := len(parts[w]); n > 0 && parts[w][n-1].Hi == start {
			parts[w][n-1].Hi = end
		} else {
			parts[w] = append(parts[w], Range{Lo: start, Hi: end})
		}
	}
	return parts
}
