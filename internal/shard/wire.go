// Package shard turns the single-process world store into the backend of a
// multi-machine deployment: shard workers own a worldstore.Store each and
// serve raw integer tallies over assigned world-index ranges, and a
// coordinator implements the estimator surface (the conn.ContextOracle the
// clustering drivers consume, plus the k-NN distance and influence-spread
// tallies) by scattering disjoint block-aligned range requests to N
// workers, gathering the per-range integer tallies and summing them.
//
// The whole design leans on one property of the world stream: every world
// is a pure function of (seed, index), and every estimator in this
// repository reduces to integer tallies summed over independently sampled
// worlds. Integer addition is associative and commutative, so any disjoint
// cover of a world range — one worker, four workers, a retried re-scatter
// after a worker died — merges to exactly the same totals, and therefore
// to bit-identical estimates. The coordinator never approximates: a failed
// worker's ranges are re-scattered and counted exactly once, a cancelled
// query returns an error and no estimate, and with no workers configured
// every query falls back to the in-process estimator over the same
// (graph, seed) stream.
//
// The wire protocol is deliberately small: one POST /shard/v1/tally
// endpoint carrying a kind tag and a list of [lo, hi) world ranges, one
// GET /shard/v1/ping for identity and health. Workers are stateless with
// respect to the partitioning — any worker can serve any range of the
// stream it owns a store for — which is what makes retry-by-re-scatter
// safe and deployment trivial (every worker process is started the same
// way, with the same graphs and seed).
package shard

// Tally kinds: the integer-tally shapes workers can compute over a world
// range. Each corresponds to one estimator surface of the library.
const (
	// KindConnected tallies, per center and node, the worlds where the
	// node shares a component with the center (unlimited-depth connection
	// counts; label scans).
	KindConnected = "connected"
	// KindWithin is the depth-limited form of KindConnected (edge-bitmap
	// BFS within Depth hops).
	KindWithin = "within"
	// KindPair tallies the worlds where nodes U and V share a component.
	KindPair = "pair"
	// KindDistances tallies, per node, the hop-distance histogram from
	// Source (the k-NN distance distribution).
	KindDistances = "distances"
	// KindSpread tallies the (world, node) pairs where the node shares a
	// component with at least one of Seeds (influence spread).
	KindSpread = "spread"
	// KindMarginal tallies, per candidate, the marginal influence spread
	// given the Seeds already picked (the greedy maximization's inner
	// query; empty Seeds gives the initial round). Empty Candidates means
	// "every node, in node order" — the initial round asks about all n
	// nodes, and shipping n IDs per scatter request would dwarf the
	// tallies themselves on large graphs.
	KindMarginal = "marginal"
)

// Wire paths of the worker protocol.
const (
	PathPing  = "/shard/v1/ping"
	PathTally = "/shard/v1/tally"
)

// Range is a half-open interval [Lo, Hi) of world indices of the seeded
// stream.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Worlds returns the number of worlds the range covers.
func (r Range) Worlds() int { return r.Hi - r.Lo }

// TallyRequest is the body of POST /shard/v1/tally: compute one Kind of
// integer tally for graph Graph over every world in Ranges. Which other
// fields apply depends on Kind (see the Kind constants).
type TallyRequest struct {
	Graph      string  `json:"graph"`
	Kind       string  `json:"kind"`
	Ranges     []Range `json:"ranges"`
	Centers    []int32 `json:"centers,omitempty"`    // connected, within
	Depth      int     `json:"depth,omitempty"`      // within
	U          int32   `json:"u,omitempty"`          // pair
	V          int32   `json:"v,omitempty"`          // pair
	Source     int32   `json:"source,omitempty"`     // distances
	Seeds      []int32 `json:"seeds,omitempty"`      // spread, marginal
	Candidates []int32 `json:"candidates,omitempty"` // marginal; empty = all nodes
}

// DistCount is one histogram bucket of a distance tally: N worlds at hop
// distance D.
type DistCount struct {
	D int32 `json:"d"`
	N int64 `json:"n"`
}

// TallyResponse carries the raw integer tallies of one request. All
// payloads are plain counts over the requested worlds, so responses from
// disjoint ranges merge by field-wise addition, in any order.
type TallyResponse struct {
	// Worlds is the total number of worlds tallied (the sum of the
	// request's range sizes) — the coordinator cross-checks it against
	// what it asked for.
	Worlds int `json:"worlds"`
	// Counts is the per-center, per-node world counts of KindConnected
	// and KindWithin: Counts[j][u] counts worlds where node u is
	// (depth-)connected to Centers[j].
	Counts [][]int32 `json:"counts,omitempty"`
	// Count is the scalar tally of KindPair.
	Count int64 `json:"count,omitempty"`
	// Totals is the per-candidate tally of KindMarginal (aligned with
	// Candidates) and the single-element tally of KindSpread.
	Totals []int64 `json:"totals,omitempty"`
	// Hist and Unreachable are the per-node distance histograms and
	// unreachable-world counts of KindDistances. Hist[u] buckets are
	// sorted by distance.
	Hist        [][]DistCount `json:"hist,omitempty"`
	Unreachable []int64       `json:"unreachable,omitempty"`
}

// PingGraph describes one graph a worker serves, so the coordinator can
// verify both sides talk about the same world stream before trusting the
// worker's tallies.
type PingGraph struct {
	Name        string `json:"name"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	Seed        uint64 `json:"seed"`
	BlockWorlds int    `json:"block_worlds"`
	Worlds      int    `json:"worlds"`
}

// PingResponse is the body of GET /shard/v1/ping.
type PingResponse struct {
	Graphs []PingGraph `json:"graphs"`
}

// errorResponse is the JSON error body of a failed worker request.
type errorResponse struct {
	Error string `json:"error"`
}

// Partition cuts the world range [lo, hi) into block-aligned subranges and
// assigns each to one of nworkers by striping block indices: the block
// with index bi (worlds [bi*blockWorlds, (bi+1)*blockWorlds)) belongs to
// worker (bi + rot) % nworkers. The returned slice has one (possibly
// empty) range list per worker; together the lists cover [lo, hi) exactly
// once, and consecutive blocks owned by the same worker are coalesced into
// one range.
//
// Striping makes ownership static: a given block lands on the same worker
// for every query and every extension of the stream (rot = 0), so workers
// keep serving the block-cached artifacts they already materialized. The
// rot parameter exists for retry rounds — re-scattering a failed range
// with a different rotation moves its blocks to different workers without
// changing what is counted. The assignment never affects results: the
// gather step sums integer tallies, which are independent of who computed
// them.
func Partition(lo, hi, blockWorlds, nworkers, rot int) [][]Range {
	parts := make([][]Range, nworkers)
	if lo < 0 {
		lo = 0
	}
	if hi <= lo || nworkers <= 0 || blockWorlds <= 0 {
		return parts
	}
	for bi := lo / blockWorlds; bi*blockWorlds < hi; bi++ {
		w := (bi + rot) % nworkers
		start, end := bi*blockWorlds, (bi+1)*blockWorlds
		if start < lo {
			start = lo
		}
		if end > hi {
			end = hi
		}
		if n := len(parts[w]); n > 0 && parts[w][n-1].Hi == start {
			parts[w][n-1].Hi = end
		} else {
			parts[w] = append(parts[w], Range{Lo: start, Hi: end})
		}
	}
	return parts
}
