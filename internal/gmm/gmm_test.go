package gmm

import (
	"math"
	"testing"

	"ucgraph/internal/graph"
)

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Uncertain {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pathGraph(t *testing.T, n int, p float64) *graph.Uncertain {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1), P: p})
	}
	return mustGraph(t, n, edges)
}

func TestGMMBasic(t *testing.T) {
	g := pathGraph(t, 10, 0.5)
	cl, err := Cluster(g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cl.K() != 3 {
		t.Fatalf("K = %d, want 3", cl.K())
	}
	if !cl.IsFull() {
		t.Fatal("GMM must assign every node")
	}
	if msg := cl.Validate(); msg != "" {
		t.Fatal(msg)
	}
}

func TestGMMRejectsBadK(t *testing.T) {
	g := pathGraph(t, 4, 0.5)
	if _, err := Cluster(g, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Cluster(g, 4, 1); err == nil {
		t.Fatal("k=n accepted")
	}
}

func TestGMMCentersDistinct(t *testing.T) {
	g := pathGraph(t, 12, 0.8)
	cl, err := Cluster(g, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[graph.NodeID]bool{}
	for _, c := range cl.Centers {
		if seen[c] {
			t.Fatalf("duplicate center %d", c)
		}
		seen[c] = true
	}
}

func TestGMMFarthestPointOnPath(t *testing.T) {
	// On a uniform path with k=2, after the random first center c, the
	// second center must be the endpoint farthest from c.
	g := pathGraph(t, 11, 0.5)
	for seed := uint64(0); seed < 10; seed++ {
		cl, err := Cluster(g, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		c0, c1 := cl.Centers[0], cl.Centers[1]
		var want graph.NodeID
		if c0 <= 5 {
			want = 10
		} else {
			want = 0
		}
		if c1 != want {
			t.Fatalf("seed %d: first center %d, second %d, want farthest endpoint %d",
				seed, c0, c1, want)
		}
	}
}

func TestGMMAssignsToClosestCenter(t *testing.T) {
	g := pathGraph(t, 10, 0.5)
	cl, err := Cluster(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every node's cluster center must be (one of) the hop-closest centers
	// (uniform weights make hops = distance order).
	d0 := g.BFSAll(cl.Centers[0])
	d1 := g.BFSAll(cl.Centers[1])
	for u := 0; u < 10; u++ {
		a := cl.Assign[u]
		du0, du1 := d0[u], d1[u]
		if a == 0 && du0 > du1 {
			t.Fatalf("node %d assigned to center 0 at distance %d but center 1 is at %d", u, du0, du1)
		}
		if a == 1 && du1 > du0 {
			t.Fatalf("node %d assigned to center 1 at distance %d but center 0 is at %d", u, du1, du0)
		}
	}
}

func TestGMMDisconnectedPicksBothComponents(t *testing.T) {
	g := mustGraph(t, 6, []graph.Edge{
		{U: 0, V: 1, P: 0.9}, {U: 1, V: 2, P: 0.9},
		{U: 3, V: 4, P: 0.9}, {U: 4, V: 5, P: 0.9},
	})
	cl, err := Cluster(g, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The two centers must land in different components (the farthest
	// node from any first center is at infinite distance in the other
	// component).
	compOf := func(u graph.NodeID) int {
		if u <= 2 {
			return 0
		}
		return 1
	}
	if compOf(cl.Centers[0]) == compOf(cl.Centers[1]) {
		t.Fatalf("centers %v landed in the same component", cl.Centers)
	}
	if !cl.IsFull() {
		t.Fatal("all nodes must be assigned when k covers all components")
	}
}

func TestGMMProbIsPathProduct(t *testing.T) {
	// Prob must be exp(-dist) = product of probabilities along the most
	// probable path to the center.
	g := pathGraph(t, 5, 0.5)
	cl, err := Cluster(g, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	c := cl.Centers[0]
	hops := g.BFSAll(c)
	for u := 0; u < 5; u++ {
		want := math.Pow(0.5, float64(hops[u]))
		if math.Abs(cl.Prob[u]-want) > 1e-9 {
			t.Fatalf("Prob[%d] = %v, want %v", u, cl.Prob[u], want)
		}
	}
}

func TestGMMDeterministicPerSeed(t *testing.T) {
	g := pathGraph(t, 20, 0.7)
	a, err := Cluster(g, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(g, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	for u := range a.Assign {
		if a.Assign[u] != b.Assign[u] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestGMMKCenter2ApproxOnPath(t *testing.T) {
	// Gonzalez is a 2-approximation for k-center. On a uniform 12-path
	// with k=3, the optimal max hop radius is 2 (centers 2, 6, 10 cover
	// within 2 hops); GMM must achieve radius <= 4.
	g := pathGraph(t, 12, 0.5)
	for seed := uint64(0); seed < 5; seed++ {
		cl, err := Cluster(g, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		dists := make([][]int32, 3)
		for i, c := range cl.Centers {
			dists[i] = g.BFSAll(c)
		}
		worst := int32(0)
		for u := 0; u < 12; u++ {
			if d := dists[cl.Assign[u]][u]; d > worst {
				worst = d
			}
		}
		if worst > 4 {
			t.Fatalf("seed %d: GMM radius %d exceeds 2x optimal (4)", seed, worst)
		}
	}
}
