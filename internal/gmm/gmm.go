// Package gmm implements the deterministic k-center baseline of Section 5.1:
// the farthest-point traversal of Gonzalez [16] run on the shortest-path
// metric obtained by setting the weight of every edge e to
// w(e) = ln(1/p(e)).
//
// This is the "naive adaptation of a classic k-center algorithm" the paper
// compares against: it is oblivious to the possible-world semantics (it
// scores a node pair by its single most probable path rather than by the
// probability that any path materializes), which is exactly why it performs
// poorly on the p_min and p_avg metrics.
package gmm

import (
	"fmt"
	"math"

	"ucgraph/internal/core"
	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

// Cluster partitions g into k clusters by farthest-point traversal. The
// first center is drawn uniformly at random from seed; subsequent centers
// are the node farthest (in the ln(1/p) shortest-path metric) from the
// current center set, and every node is finally assigned to its closest
// center.
//
// Each node's Prob field records exp(-dist) to its center: the probability
// of the single most probable path, a lower bound on the true connection
// probability.
func Cluster(g *graph.Uncertain, k int, seed uint64) (*core.Clustering, error) {
	n := g.NumNodes()
	if k < 1 || k >= n {
		return nil, fmt.Errorf("gmm: k = %d out of range [1, %d)", k, n)
	}
	rnd := rng.NewXoshiro256(rng.Stream(seed, 0x474d4d)) // "GMM" stream

	centers := make([]graph.NodeID, 0, k)
	minDist := make([]float64, n)
	owner := make([]int32, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
		owner[i] = -1
	}

	addCenter := func(c graph.NodeID) {
		idx := int32(len(centers))
		centers = append(centers, c)
		d := g.Dijkstra(c)
		for u := 0; u < n; u++ {
			if d[u] < minDist[u] {
				minDist[u] = d[u]
				owner[u] = idx
			}
		}
	}

	addCenter(graph.NodeID(rnd.Intn(n)))
	for len(centers) < k {
		// Farthest node from the current centers; infinite distances
		// (disconnected nodes) win immediately.
		far := graph.NodeID(-1)
		farDist := -1.0
		for u := 0; u < n; u++ {
			if owner[u] >= 0 && minDist[u] == 0 {
				continue // already a center
			}
			if minDist[u] > farDist {
				farDist = minDist[u]
				far = graph.NodeID(u)
			}
		}
		if far < 0 {
			// Fewer distinct nodes than k (cannot happen for k < n), but
			// guard against pathological ties.
			break
		}
		addCenter(far)
	}

	cl := &core.Clustering{
		Centers: centers,
		Assign:  make([]int32, n),
		Prob:    make([]float64, n),
	}
	for u := 0; u < n; u++ {
		cl.Assign[u] = owner[u]
		if owner[u] >= 0 {
			cl.Prob[u] = math.Exp(-minDist[u])
		}
	}
	for i, c := range centers {
		cl.Assign[c] = int32(i)
		cl.Prob[c] = 1
	}
	return cl, nil
}
