package gio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"ucgraph/internal/core"
	"ucgraph/internal/graph"
)

func sampleClustering() *core.Clustering {
	return &core.Clustering{
		Centers: []graph.NodeID{2, 5},
		Assign:  []int32{0, 0, 0, 1, core.Unassigned, 1},
		Prob:    []float64{0.7, 0.8, 1, 0.9, 0, 1},
	}
}

func TestClustersRoundTrip(t *testing.T) {
	cl := sampleClustering()
	var buf bytes.Buffer
	if err := WriteClusters(&buf, cl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadClusters(&buf, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got.K() != 2 {
		t.Fatalf("K = %d, want 2", got.K())
	}
	for u, want := range cl.Assign {
		if got.Assign[u] != want {
			t.Fatalf("node %d: assign %d, want %d", u, got.Assign[u], want)
		}
	}
	// Centers are preserved in order.
	if got.Centers[0] != 2 || got.Centers[1] != 5 {
		t.Fatalf("centers = %v", got.Centers)
	}
	if msg := got.Validate(); msg != "" {
		t.Fatal(msg)
	}
}

func TestClustersCenterFirstOnLine(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteClusters(&buf, sampleClustering()); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		first := strings.Fields(line)[0]
		if first != "2" && first != "5" {
			t.Fatalf("line %q does not start with a center", line)
		}
	}
}

func TestReadClustersErrors(t *testing.T) {
	cases := map[string]string{
		"bad id":        "1 x 3\n",
		"out of range":  "1 99\n",
		"negative":      "-1 2\n",
		"duplicate":     "0 1\n1 2\n",
		"dup same line": "0 1 1\n",
	}
	for name, in := range cases {
		if _, err := ReadClusters(strings.NewReader(in), 6); err == nil {
			t.Errorf("%s: no error for %q", name, in)
		}
	}
}

func TestReadClustersPartial(t *testing.T) {
	// Only nodes 0-2 clustered; 3-5 stay unassigned.
	got, err := ReadClusters(strings.NewReader("0 1 2\n"), 6)
	if err != nil {
		t.Fatal(err)
	}
	if got.Covered() != 3 {
		t.Fatalf("covered %d, want 3", got.Covered())
	}
	for u := 3; u < 6; u++ {
		if got.Assign[u] != core.Unassigned {
			t.Fatalf("node %d should be unassigned", u)
		}
	}
}

func TestClustersFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cl.txt")
	if err := SaveClusters(path, sampleClustering()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadClusters(path, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got.K() != 2 || got.Covered() != 5 {
		t.Fatalf("loaded K=%d covered=%d", got.K(), got.Covered())
	}
}
