package gio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ucgraph/internal/core"
	"ucgraph/internal/graph"
)

// WriteClusters writes a clustering, one cluster per line: the center
// first, then the other members in ascending order. Unassigned nodes are
// omitted. The format round-trips through ReadClusters.
func WriteClusters(w io.Writer, cl *core.Clustering) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# ucgraph clustering: %d clusters, %d/%d nodes covered\n",
		cl.K(), cl.Covered(), cl.N())
	for i, members := range cl.Clusters() {
		if _, err := fmt.Fprintf(bw, "%d", cl.Centers[i]); err != nil {
			return err
		}
		for _, u := range members {
			if u != cl.Centers[i] {
				if _, err := fmt.Fprintf(bw, " %d", u); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadClusters parses a clustering written by WriteClusters for a graph
// with n nodes. Connection probabilities are not stored in the format, so
// Prob is 1 for centers and 0 elsewhere; re-estimate with metrics if
// needed.
func ReadClusters(r io.Reader, n int) (*core.Clustering, error) {
	cl := &core.Clustering{
		Assign: make([]int32, n),
		Prob:   make([]float64, n),
	}
	for i := range cl.Assign {
		cl.Assign[i] = core.Unassigned
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := int32(len(cl.Centers))
		for fi, f := range strings.Fields(line) {
			id, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("gio: line %d: bad node id %q: %v", lineNo, f, err)
			}
			u := graph.NodeID(id)
			if int(u) < 0 || int(u) >= n {
				return nil, fmt.Errorf("gio: line %d: node %d outside graph of %d nodes", lineNo, u, n)
			}
			if cl.Assign[u] != core.Unassigned {
				return nil, fmt.Errorf("gio: line %d: node %d appears in two clusters", lineNo, u)
			}
			cl.Assign[u] = idx
			if fi == 0 {
				cl.Centers = append(cl.Centers, u)
				cl.Prob[u] = 1
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gio: read: %v", err)
	}
	return cl, nil
}

// SaveClusters writes a clustering to a file.
func SaveClusters(path string, cl *core.Clustering) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteClusters(f, cl); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadClusters reads a clustering from a file for a graph with n nodes.
func LoadClusters(path string, n int) (*core.Clustering, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadClusters(f, n)
}
