// Package gio reads and writes uncertain graphs and clustering ground truth
// in plain text formats.
//
// Graph format (the same edge-list format used by the paper's reference
// implementation): one edge per line, "u v p" with integer node IDs and a
// float probability; lines starting with '#' and blank lines are ignored.
//
// Ground-truth format (protein complexes): one complex per line, the
// whitespace-separated integer IDs of its members; '#' comments allowed.
package gio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"ucgraph/internal/graph"
)

// ReadGraph parses an uncertain graph from r.
func ReadGraph(r io.Reader) (*graph.Uncertain, error) {
	b := graph.NewBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("gio: line %d: want 'u v p', got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad node id %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad node id %q: %v", lineNo, fields[1], err)
		}
		p, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad probability %q: %v", lineNo, fields[2], err)
		}
		if err := b.AddEdge(int32(u), int32(v), p); err != nil {
			return nil, fmt.Errorf("gio: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gio: read: %v", err)
	}
	return b.Build()
}

// WriteGraph writes g in the edge-list format. Edges are written in edge-ID
// order, so output is deterministic.
func WriteGraph(w io.Writer, g *graph.Uncertain) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# ucgraph uncertain graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.U, e.V, e.P); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadGraph reads an uncertain graph from a file.
func LoadGraph(path string) (*graph.Uncertain, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadGraph(f)
}

// SaveGraph writes an uncertain graph to a file.
func SaveGraph(path string, g *graph.Uncertain) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteGraph(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadGroundTruth parses complexes (one per line) from r.
func ReadGroundTruth(r io.Reader) ([][]graph.NodeID, error) {
	var out [][]graph.NodeID
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		complexNodes := make([]graph.NodeID, 0, len(fields))
		for _, f := range fields {
			id, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("gio: line %d: bad member id %q: %v", lineNo, f, err)
			}
			complexNodes = append(complexNodes, int32(id))
		}
		out = append(out, complexNodes)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gio: read: %v", err)
	}
	return out, nil
}

// WriteGroundTruth writes complexes, one per line, members sorted.
func WriteGroundTruth(w io.Writer, complexes [][]graph.NodeID) error {
	bw := bufio.NewWriter(w)
	for _, c := range complexes {
		sorted := make([]graph.NodeID, len(c))
		copy(sorted, c)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i, id := range sorted {
			if i > 0 {
				if _, err := fmt.Fprint(bw, " "); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%d", id); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadGroundTruth reads complexes from a file.
func LoadGroundTruth(path string) ([][]graph.NodeID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadGroundTruth(f)
}

// SaveGroundTruth writes complexes to a file.
func SaveGroundTruth(path string, complexes [][]graph.NodeID) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteGroundTruth(f, complexes); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
