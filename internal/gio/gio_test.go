package gio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"ucgraph/internal/graph"
)

func TestReadGraphBasic(t *testing.T) {
	in := `# comment
0 1 0.5

1 2 0.75
2 3 1
`
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatalf("got %d nodes %d edges, want 4, 3", g.NumNodes(), g.NumEdges())
	}
	if p, ok := g.HasEdge(1, 2); !ok || p != 0.75 {
		t.Fatalf("edge {1,2} = %v,%v", p, ok)
	}
}

func TestReadGraphErrors(t *testing.T) {
	cases := map[string]string{
		"missing field":   "0 1\n",
		"extra field":     "0 1 0.5 9\n",
		"bad node":        "x 1 0.5\n",
		"bad node 2":      "0 y 0.5\n",
		"bad probability": "0 1 zz\n",
		"p out of range":  "0 1 1.5\n",
		"self loop":       "3 3 0.5\n",
	}
	for name, in := range cases {
		if _, err := ReadGraph(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error for %q", name, in)
		}
	}
}

func TestGraphRoundTrip(t *testing.T) {
	g, err := graph.FromEdges(5, []graph.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 1, V: 2, P: 0.25},
		{U: 3, V: 4, P: 0.123456789}, {U: 0, V: 4, P: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: %d/%d -> %d/%d",
			g.NumNodes(), g.NumEdges(), g2.NumNodes(), g2.NumEdges())
	}
	for _, e := range g.Edges() {
		p, ok := g2.HasEdge(e.U, e.V)
		if !ok || p != e.P {
			t.Fatalf("edge {%d,%d}: got %v,%v want %v,true", e.U, e.V, p, ok, e.P)
		}
	}
}

func TestGraphFileRoundTrip(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, P: 0.5}, {U: 1, V: 2, P: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 2 {
		t.Fatalf("loaded %d edges, want 2", g2.NumEdges())
	}
}

func TestLoadGraphMissingFile(t *testing.T) {
	if _, err := LoadGraph(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("loading a missing file must fail")
	}
}

func TestGroundTruthRoundTrip(t *testing.T) {
	complexes := [][]graph.NodeID{
		{3, 1, 2},
		{7},
		{10, 11, 12, 13},
	}
	var buf bytes.Buffer
	if err := WriteGroundTruth(&buf, complexes); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGroundTruth(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("round trip produced %d complexes, want 3", len(got))
	}
	// Writer sorts members.
	want := [][]graph.NodeID{{1, 2, 3}, {7}, {10, 11, 12, 13}}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("complex %d: %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("complex %d: %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestGroundTruthComments(t *testing.T) {
	in := "# complexes\n1 2 3\n\n# another\n4 5\n"
	got, err := ReadGroundTruth(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0]) != 3 || len(got[1]) != 2 {
		t.Fatalf("parsed %v", got)
	}
}

func TestGroundTruthBadID(t *testing.T) {
	if _, err := ReadGroundTruth(strings.NewReader("1 two 3\n")); err == nil {
		t.Fatal("bad member id accepted")
	}
}

func TestGroundTruthFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gt.txt")
	if err := SaveGroundTruth(path, [][]graph.NodeID{{1, 2}, {3}}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGroundTruth(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d complexes, want 2", len(got))
	}
}
