package stattest

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ucgraph/internal/server"
)

// TestDrainCompletesOpenStreamedQuery is the graceful-shutdown contract
// end to end: a drain initiated while an SSE refinement stream is open
// must flip /healthz to 503 "draining" immediately, let the stream run
// every remaining round to completion, and only then report drained —
// with the final frame bit-identical to an undisturbed run. A shutdown
// may slow a query down; it may never change or truncate its answer.
func TestDrainCompletesOpenStreamedQuery(t *testing.T) {
	g := e2eGraph(t, 64, 3)

	// Ground truth: the same streamed query against an undisturbed server.
	plain := startServer(t, g, server.Options{})
	wantFrames, errEvent := streamFrames(t, plain.URL+"/v1/conn", progressiveConnBody())
	if errEvent != nil {
		t.Fatalf("undisturbed stream errored: %v", errEvent)
	}
	want := checkRefinement(t, wantFrames, 4096)

	s, err := server.New([]server.GraphConfig{{Name: "g", Graph: g, Seed: 11}}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// Begin the drain as soon as the first refinement frame is out —
	// squarely mid-stream, with later rounds still to run.
	drained := make(chan error, 1)
	frames, errEvent := streamFramesWithHook(t, ts.URL+"/v1/conn", progressiveConnBody(), func(frameNo int) {
		if frameNo != 1 {
			return
		}
		s.StartDrain()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Errorf("healthz during drain: %v", err)
			return
		}
		var health struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
			t.Errorf("healthz body: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || health.Status != "draining" {
			t.Errorf("draining healthz = %d %q, want 503 draining", resp.StatusCode, health.Status)
		}
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			drained <- s.Drain(ctx)
		}()
	})
	if errEvent != nil {
		t.Fatalf("stream errored during drain: %v", errEvent)
	}
	got := checkRefinement(t, frames, 4096)

	if err := <-drained; err != nil {
		t.Fatalf("drain did not complete after the stream finished: %v", err)
	}
	a, _ := json.Marshal(got)
	b, _ := json.Marshal(want)
	if string(a) != string(b) {
		t.Fatalf("drained stream's final frame differs from the undisturbed run:\n%s\nvs\n%s", a, b)
	}
}
