package stattest

import (
	"context"
	"fmt"
	"math"
	"testing"

	"ucgraph/internal/conn"
	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

// fixture is one tiny graph whose connection probabilities conn.Exact can
// enumerate (2^m worlds), paired with the center the sweep estimates from.
type fixture struct {
	name   string
	g      *graph.Uncertain
	center graph.NodeID
}

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Uncertain {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// fixtures builds the conformance corpus: structures chosen to put
// estimates at very different points of the [0,1] scale — near-certain
// (series of high-p edges), balanced, and rare-event — because the
// empirical-Bernstein half of the bound only earns its keep away from
// p = 1/2.
func fixtures(t *testing.T) []fixture {
	t.Helper()
	var fs []fixture

	// 6-node path, alternating strong/weak edges.
	path := []graph.Edge{
		{U: 0, V: 1, P: 0.9}, {U: 1, V: 2, P: 0.4},
		{U: 2, V: 3, P: 0.85}, {U: 3, V: 4, P: 0.5},
		{U: 4, V: 5, P: 0.95},
	}
	fs = append(fs, fixture{"path6", mustGraph(t, 6, path), 0})

	// Diamond with a chord: redundant routes, probabilities near 1.
	diamond := []graph.Edge{
		{U: 0, V: 1, P: 0.8}, {U: 0, V: 2, P: 0.7},
		{U: 1, V: 3, P: 0.75}, {U: 2, V: 3, P: 0.8},
		{U: 1, V: 2, P: 0.6}, {U: 0, V: 3, P: 0.3},
	}
	fs = append(fs, fixture{"diamond", mustGraph(t, 4, diamond), 0})

	// Two 4-cliques joined by one weak bridge: within-clique probabilities
	// near 1, cross-clique near 0 — the extremes where Hoeffding alone
	// would be loose and the EB term must still cover.
	var cliq []graph.Edge
	for c := 0; c < 2; c++ {
		base := int32(c * 4)
		for i := int32(0); i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				cliq = append(cliq, graph.Edge{U: base + i, V: base + j, P: 0.9})
			}
		}
	}
	cliq = append(cliq, graph.Edge{U: 0, V: 4, P: 0.1})
	fs = append(fs, fixture{"cliques", mustGraph(t, 8, cliq), 1})

	// Seeded random sparse graph: no structure to hide behind.
	x := rng.NewXoshiro256(1234)
	seen := map[[2]int32]bool{}
	var rnd []graph.Edge
	for len(rnd) < 14 {
		u, v := int32(x.Intn(9)), int32(x.Intn(9))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int32{u, v}] {
			continue
		}
		seen[[2]int32{u, v}] = true
		rnd = append(rnd, graph.Edge{U: u, V: v, P: 0.05 + 0.9*x.Float64()})
	}
	fs = append(fs, fixture{"random9", mustGraph(t, 9, rnd), 2})

	return fs
}

// maxViolations is the acceptance line for an observed Binomial(trials,
// delta) violation count: mean + 3 standard deviations, floored at the
// mean rounded up. The adaptive guarantee is an upper bound (union bound
// over rounds and quantities, each interval conservative), so in practice
// the count sits far below even delta*trials; three sigmas keeps the test
// deterministic-in-spirit without ever excusing a broken bound.
func maxViolations(trials int, delta float64) int {
	mean := float64(trials) * delta
	sd := math.Sqrt(float64(trials) * delta * (1 - delta))
	return int(math.Ceil(mean + 3*sd))
}

// TestAdaptiveCenterCoverage sweeps AdaptiveFromCenters over 25 world
// seeds per fixture and checks the (eps, delta) contract against exact
// truth: on converged runs, every per-node estimate must sit within eps
// of its true connection probability, except with frequency <= delta
// (plus binomial tolerance).
func TestAdaptiveCenterCoverage(t *testing.T) {
	const (
		trials = 25
		eps    = 0.1
		delta  = 0.1
	)
	params := conn.AdaptiveParams{Eps: eps, Delta: delta, MaxWorlds: 1 << 16}
	for _, fx := range fixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			ex, err := conn.NewExact(fx.g)
			if err != nil {
				t.Fatal(err)
			}
			truth := ex.FromCenter(fx.center, conn.Unlimited, 0)
			violations := 0
			for seed := uint64(1); seed <= trials; seed++ {
				mc := conn.NewMonteCarlo(fx.g, seed)
				ests, st, err := conn.AdaptiveFromCenters(context.Background(), mc,
					[]graph.NodeID{fx.center}, conn.Unlimited, nil, params, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !st.Converged {
					t.Fatalf("seed %d did not converge within %d worlds", seed, params.MaxWorlds)
				}
				worst := 0.0
				for v, p := range ests[0] {
					if d := math.Abs(p - truth[v]); d > worst {
						worst = d
						_ = v
					}
				}
				if worst > eps {
					violations++
					t.Logf("seed %d violates: max |est-truth| = %v > eps %v (after %d worlds)", seed, worst, eps, st.Worlds)
				}
			}
			if max := maxViolations(trials, delta); violations > max {
				t.Fatalf("%d of %d trials violate eps=%v — above the delta=%v line (allowed %d)",
					violations, trials, eps, delta, max)
			}
		})
	}
}

// TestAdaptivePairCoverage is the pair-query form of the sweep, at a
// tighter eps and across two (eps, delta) settings: the half-width math
// must hold at whatever target the caller picks, not just the default.
func TestAdaptivePairCoverage(t *testing.T) {
	const trials = 20
	settings := []struct{ eps, delta float64 }{
		{0.1, 0.1},
		{0.05, 0.2},
	}
	for _, s := range settings {
		s := s
		t.Run(fmt.Sprintf("eps=%v,delta=%v", s.eps, s.delta), func(t *testing.T) {
			params := conn.AdaptiveParams{Eps: s.eps, Delta: s.delta, MaxWorlds: 1 << 17}
			for _, fx := range fixtures(t) {
				ex, err := conn.NewExact(fx.g)
				if err != nil {
					t.Fatal(err)
				}
				u := fx.center
				v := graph.NodeID((int(fx.center) + fx.g.NumNodes() - 1) % fx.g.NumNodes())
				truth := ex.Pair(u, v)
				violations := 0
				for seed := uint64(100); seed < 100+trials; seed++ {
					mc := conn.NewMonteCarlo(fx.g, seed)
					p, st, err := conn.AdaptivePairInterval(context.Background(), mc, u, v, conn.Unlimited, params, nil)
					if err != nil {
						t.Fatal(err)
					}
					if !st.Converged {
						t.Fatalf("fixture %s seed %d unconverged", fx.name, seed)
					}
					if st.HalfWidth > s.eps {
						t.Fatalf("fixture %s seed %d: converged with half-width %v > eps %v", fx.name, seed, st.HalfWidth, s.eps)
					}
					if math.Abs(p-truth) > s.eps {
						violations++
						t.Logf("fixture %s seed %d violates: |%v - %v| > %v", fx.name, seed, p, truth, s.eps)
					}
				}
				if max := maxViolations(trials, s.delta); violations > max {
					t.Fatalf("fixture %s: %d of %d pair trials violate eps=%v (allowed %d)",
						fx.name, violations, trials, s.eps, max)
				}
			}
		})
	}
}

// TestAdaptiveIntervalIsHonest checks the certificate itself, not just the
// point estimate: on every converged run the reported half-width must
// actually cover the true error for all tracked quantities at the claimed
// confidence — the interval [est-hw, est+hw] contains the truth.
func TestAdaptiveIntervalIsHonest(t *testing.T) {
	const (
		trials = 25
		eps    = 0.08
		delta  = 0.1
	)
	params := conn.AdaptiveParams{Eps: eps, Delta: delta, MaxWorlds: 1 << 16}
	fx := fixtures(t)[2] // cliques: mixes near-0 and near-1 truths
	ex, err := conn.NewExact(fx.g)
	if err != nil {
		t.Fatal(err)
	}
	truth := ex.FromCenter(fx.center, conn.Unlimited, 0)
	violations := 0
	for seed := uint64(1); seed <= trials; seed++ {
		mc := conn.NewMonteCarlo(fx.g, seed*31)
		ests, st, err := conn.AdaptiveFromCenters(context.Background(), mc,
			[]graph.NodeID{fx.center}, conn.Unlimited, nil, params, nil)
		if err != nil {
			t.Fatal(err)
		}
		covered := true
		for v, p := range ests[0] {
			if math.Abs(p-truth[v]) > st.HalfWidth {
				covered = false
			}
		}
		if !covered {
			violations++
		}
	}
	if max := maxViolations(trials, delta); violations > max {
		t.Fatalf("%d of %d certificates fail to cover the truth (allowed %d)", violations, trials, max)
	}
}
