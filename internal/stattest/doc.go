// Package stattest is the statistical conformance harness for the
// adaptive (eps, delta) estimation stack.
//
// Unit tests elsewhere pin determinism: same seed, same answer, bit for
// bit. The tests in this package check the other half of the contract —
// that the answers mean what the confidence parameters claim:
//
//   - Conformance sweeps run the adaptive estimator across many world
//     seeds against exact ground truth (conn.Exact enumerates all 2^m
//     worlds of tiny fixtures) and assert the empirical violation rate
//     |estimate - truth| > eps stays within delta plus binomial
//     tolerance. The guarantee is distribution-free, so if these fail the
//     half-width math is wrong, not unlucky.
//
//   - Progressive end-to-end tests drive the daemon's SSE surface and
//     assert the refinement stream is well-formed: intervals shrink
//     monotonically, worlds consumed grow, and the final frame equals
//     the fixed-budget answer at the same consumed-world count.
//
//   - Chaos tests kill a shard worker mid-adaptive-round through a TCP
//     proxy and assert early stopping never launders a failure into an
//     unconverged answer: the stream either ends in a converged frame
//     bit-identical to the unsharded run, or an explicit error event.
//
// The package contains no production code; it exists so `go test
// ./internal/stattest` is the one command that re-validates the
// statistical claims after any estimator change.
package stattest
