package stattest

import (
	"encoding/json"
	"testing"
	"time"

	"ucgraph/internal/faultinject"
	"ucgraph/internal/server"
)

// newKillableProxy puts a faultinject.Proxy between the coordinator and
// one shard worker. Faults are injected below HTTP on purpose: the shard
// fabric's persistent streams die the way production workers die.
func newKillableProxy(t testing.TB, backend string) *faultinject.Proxy {
	t.Helper()
	p, err := faultinject.New(backend)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestAdaptiveSurvivesWorkerKillMidQuery is the chaos half of the
// conformance contract: a 2-worker sharded daemon loses one worker in the
// middle of an adaptive streaming query, and the stream must still end in
// a CONVERGED final frame bit-identical to the unsharded adaptive answer.
// Early stopping may never launder the failure into a short, unconverged
// "answer" — the acceptable outcomes are the right answer or an explicit
// error event, and with a surviving worker holding the same deterministic
// world stream it must be the right answer.
func TestAdaptiveSurvivesWorkerKillMidQuery(t *testing.T) {
	g := e2eGraph(t, 64, 3)

	// Ground truth: the unsharded adaptive run.
	plain := startServer(t, g, server.Options{})
	wantFrames, errEvent := streamFrames(t, plain.URL+"/v1/conn", progressiveConnBody())
	if errEvent != nil {
		t.Fatalf("unsharded stream errored: %v", errEvent)
	}
	want := checkRefinement(t, wantFrames, 4096)

	// Sharded daemon: worker A direct, worker B behind the killable
	// proxy, throttled so each tally response costs ~15ms and the
	// adaptive rounds stretch over real wall-clock.
	addrs := startWorkers(t, g, 2)
	proxy := newKillableProxy(t, addrs[1])
	proxy.SetDelay(15 * time.Millisecond)
	sharded := startServer(t, g, server.Options{
		Shards: []string{addrs[0], proxy.URL()},
	})

	// Kill the proxied worker as soon as the first refinement frame is
	// out — squarely mid-query, with later rounds still to scatter.
	killed := make(chan struct{})
	frames, errEvent := streamFramesWithHook(t, sharded.URL+"/v1/conn", progressiveConnBody(), func(frameNo int) {
		if frameNo == 1 {
			proxy.Kill()
			close(killed)
		}
	})
	select {
	case <-killed:
	default:
		t.Fatal("worker was never killed: query finished before the first frame hook fired")
	}
	if errEvent != nil {
		t.Fatalf("stream errored instead of failing over: %v", errEvent)
	}
	got := checkRefinement(t, frames, 4096)

	// The surviving worker serves the same deterministic world stream, so
	// the final frame — estimate, half-width, worlds — matches the
	// unsharded run exactly.
	a, _ := json.Marshal(got)
	b, _ := json.Marshal(want)
	if string(a) != string(b) {
		t.Fatalf("post-kill final frame differs from unsharded run:\n%s\nvs\n%s", a, b)
	}
}

// TestAdaptiveAllWorkersDeadFailsLoudly is the complementary guarantee:
// when no worker survives, the stream must end in an explicit error
// event, never a fabricated final frame.
func TestAdaptiveAllWorkersDeadFailsLoudly(t *testing.T) {
	g := e2eGraph(t, 64, 3)
	addrs := startWorkers(t, g, 2)
	proxyA := newKillableProxy(t, addrs[0])
	proxyB := newKillableProxy(t, addrs[1])
	proxyA.SetDelay(15 * time.Millisecond)
	proxyB.SetDelay(15 * time.Millisecond)
	sharded := startServer(t, g, server.Options{
		Shards: []string{proxyA.URL(), proxyB.URL()},
	})

	frames, errEvent := streamFramesWithHook(t, sharded.URL+"/v1/conn", progressiveConnBody(), func(frameNo int) {
		if frameNo == 1 {
			proxyA.Kill()
			proxyB.Kill()
		}
	})
	if errEvent == nil {
		t.Fatalf("no error event after losing every worker; got %d frames", len(frames))
	}
	for _, f := range frames {
		if f["final"] == true || f["converged"] == true {
			t.Fatalf("fabricated converged/final frame after total worker loss: %v", f)
		}
	}
}
