package stattest

import (
	"encoding/json"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ucgraph/internal/server"
)

// killableProxy is a minimal TCP forwarder between the coordinator and
// one shard worker: it can throttle backend responses (so an adaptive
// query spans observable wall-clock) and kill the worker (sever every
// live connection and refuse new ones — the connection-layer shape of a
// real worker crash). Faults are injected below HTTP on purpose: the
// shard fabric's persistent streams die the way production workers die.
type killableProxy struct {
	ln      net.Listener
	backend string
	down    atomic.Bool
	delay   atomic.Int64 // response throttle, ns per read

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

func newKillableProxy(t testing.TB, backend string) *killableProxy {
	t.Helper()
	backend = strings.TrimPrefix(backend, "http://")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killableProxy{ln: ln, backend: backend, conns: make(map[net.Conn]struct{})}
	go p.accept()
	t.Cleanup(func() {
		ln.Close()
		p.kill()
	})
	return p
}

func (p *killableProxy) url() string { return "http://" + p.ln.Addr().String() }

func (p *killableProxy) accept() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.down.Load() {
			c.Close()
			continue
		}
		b, err := net.Dial("tcp", p.backend)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		p.conns[c] = struct{}{}
		p.conns[b] = struct{}{}
		p.mu.Unlock()
		go p.pipe(c, b, false)
		go p.pipe(b, c, true)
	}
}

func (p *killableProxy) pipe(src, dst net.Conn, throttled bool) {
	defer src.Close()
	defer dst.Close()
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if throttled {
				if d := p.delay.Load(); d > 0 {
					time.Sleep(time.Duration(d))
				}
			}
			if p.down.Load() {
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// kill severs every live connection and refuses new ones.
func (p *killableProxy) kill() {
	p.down.Store(true)
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
}

// TestAdaptiveSurvivesWorkerKillMidQuery is the chaos half of the
// conformance contract: a 2-worker sharded daemon loses one worker in the
// middle of an adaptive streaming query, and the stream must still end in
// a CONVERGED final frame bit-identical to the unsharded adaptive answer.
// Early stopping may never launder the failure into a short, unconverged
// "answer" — the acceptable outcomes are the right answer or an explicit
// error event, and with a surviving worker holding the same deterministic
// world stream it must be the right answer.
func TestAdaptiveSurvivesWorkerKillMidQuery(t *testing.T) {
	g := e2eGraph(t, 64, 3)

	// Ground truth: the unsharded adaptive run.
	plain := startServer(t, g, server.Options{})
	wantFrames, errEvent := streamFrames(t, plain.URL+"/v1/conn", progressiveConnBody())
	if errEvent != nil {
		t.Fatalf("unsharded stream errored: %v", errEvent)
	}
	want := checkRefinement(t, wantFrames, 4096)

	// Sharded daemon: worker A direct, worker B behind the killable
	// proxy, throttled so each tally response costs ~15ms and the
	// adaptive rounds stretch over real wall-clock.
	addrs := startWorkers(t, g, 2)
	proxy := newKillableProxy(t, addrs[1])
	proxy.delay.Store(int64(15 * time.Millisecond))
	sharded := startServer(t, g, server.Options{
		Shards: []string{addrs[0], proxy.url()},
	})

	// Kill the proxied worker as soon as the first refinement frame is
	// out — squarely mid-query, with later rounds still to scatter.
	killed := make(chan struct{})
	frames, errEvent := streamFramesWithHook(t, sharded.URL+"/v1/conn", progressiveConnBody(), func(frameNo int) {
		if frameNo == 1 {
			proxy.kill()
			close(killed)
		}
	})
	select {
	case <-killed:
	default:
		t.Fatal("worker was never killed: query finished before the first frame hook fired")
	}
	if errEvent != nil {
		t.Fatalf("stream errored instead of failing over: %v", errEvent)
	}
	got := checkRefinement(t, frames, 4096)

	// The surviving worker serves the same deterministic world stream, so
	// the final frame — estimate, half-width, worlds — matches the
	// unsharded run exactly.
	a, _ := json.Marshal(got)
	b, _ := json.Marshal(want)
	if string(a) != string(b) {
		t.Fatalf("post-kill final frame differs from unsharded run:\n%s\nvs\n%s", a, b)
	}
}

// TestAdaptiveAllWorkersDeadFailsLoudly is the complementary guarantee:
// when no worker survives, the stream must end in an explicit error
// event, never a fabricated final frame.
func TestAdaptiveAllWorkersDeadFailsLoudly(t *testing.T) {
	g := e2eGraph(t, 64, 3)
	addrs := startWorkers(t, g, 2)
	proxyA := newKillableProxy(t, addrs[0])
	proxyB := newKillableProxy(t, addrs[1])
	proxyA.delay.Store(int64(15 * time.Millisecond))
	proxyB.delay.Store(int64(15 * time.Millisecond))
	sharded := startServer(t, g, server.Options{
		Shards: []string{proxyA.url(), proxyB.url()},
	})

	frames, errEvent := streamFramesWithHook(t, sharded.URL+"/v1/conn", progressiveConnBody(), func(frameNo int) {
		if frameNo == 1 {
			proxyA.kill()
			proxyB.kill()
		}
	})
	if errEvent == nil {
		t.Fatalf("no error event after losing every worker; got %d frames", len(frames))
	}
	for _, f := range frames {
		if f["final"] == true || f["converged"] == true {
			t.Fatalf("fabricated converged/final frame after total worker loss: %v", f)
		}
	}
}
