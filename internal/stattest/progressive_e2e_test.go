package stattest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
	"ucgraph/internal/server"
	"ucgraph/internal/shard"
)

// e2eGraph builds the moderate ring-with-chords graph the end-to-end
// suites query.
func e2eGraph(t testing.TB, n int, seed uint64) *graph.Uncertain {
	t.Helper()
	x := rng.NewXoshiro256(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		if err := b.AddEdge(int32(i), int32((i+1)%n), 0.3+0.65*x.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n/4; i++ {
		u, v := int32(x.Intn(n)), int32(x.Intn(n))
		if u != v {
			_ = b.AddEdge(u, v, 0.2+0.5*x.Float64())
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func startServer(t testing.TB, g *graph.Uncertain, opts server.Options) *httptest.Server {
	t.Helper()
	s, err := server.New([]server.GraphConfig{{Name: "g", Graph: g, Seed: 11}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func startWorkers(t testing.TB, g *graph.Uncertain, count int) []string {
	t.Helper()
	addrs := make([]string, count)
	for i := 0; i < count; i++ {
		w, err := shard.NewWorker([]shard.WorkerGraph{{Name: "g", Graph: g, Seed: 11}}, shard.WorkerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ws := httptest.NewServer(w)
		t.Cleanup(ws.Close)
		addrs[i] = ws.URL
	}
	return addrs
}

func postJSON(t testing.TB, url string, body any, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("decoding %q: %v", raw.String(), err)
		}
	}
	return resp.StatusCode, raw.String()
}

// streamFrames posts a request and collects the SSE response: the decoded
// data frames plus the terminal error event, if any.
func streamFrames(t testing.TB, url string, body any) (frames []map[string]any, errEvent map[string]any) {
	t.Helper()
	return streamFramesWithHook(t, url, body, nil)
}

// streamFramesWithHook is streamFrames with a callback fired after every
// decoded data frame (1-based frame number) — the chaos tests use it to
// inject faults at a precise point mid-stream.
func streamFramesWithHook(t testing.TB, url string, body any, onFrame func(frameNo int)) (frames []map[string]any, errEvent map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream request: code %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	inError := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: error":
			inError = true
		case strings.HasPrefix(line, "data: "):
			var m map[string]any
			if err := json.Unmarshal([]byte(line[len("data: "):]), &m); err != nil {
				t.Fatalf("bad frame %q: %v", line, err)
			}
			if inError {
				errEvent = m
				inError = false
			} else {
				frames = append(frames, m)
				if onFrame != nil {
					onFrame(len(frames))
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return frames, errEvent
}

// progressiveConnBody is the canonical adaptive streaming query of the
// e2e suites.
func progressiveConnBody() map[string]any {
	return map[string]any{
		"graph": "g", "centers": []int{0, 21}, "targets": []int{1, 20, 36},
		"samples": 4096, "eps": 0.05, "delta": 0.05, "stream": true,
	}
}

// checkRefinement asserts a well-formed refinement stream: at least two
// frames, worlds strictly increasing, half-width strictly shrinking, last
// frame converged+final inside the budget. Returns the final frame.
func checkRefinement(t *testing.T, frames []map[string]any, budget int) map[string]any {
	t.Helper()
	if len(frames) < 2 {
		t.Fatalf("want >= 2 refinement frames, got %d", len(frames))
	}
	for i := 1; i < len(frames); i++ {
		if frames[i]["worlds"].(float64) <= frames[i-1]["worlds"].(float64) {
			t.Fatalf("worlds not increasing at frame %d", i)
		}
		if frames[i]["half_width"].(float64) >= frames[i-1]["half_width"].(float64) {
			t.Fatalf("half-width not shrinking at frame %d: %v -> %v",
				i, frames[i-1]["half_width"], frames[i]["half_width"])
		}
	}
	last := frames[len(frames)-1]
	if last["final"] != true {
		t.Fatalf("last frame not final: %v", last)
	}
	if last["converged"] != true {
		t.Fatalf("stream ended unconverged: %v", last)
	}
	if int(last["worlds"].(float64)) >= budget {
		t.Fatalf("no early stop: %v of %d worlds", last["worlds"], budget)
	}
	return last
}

// TestProgressiveStreamEndToEnd drives /v1/conn streaming against a real
// daemon: monotone refinement, early stop, and a final frame equal to the
// fixed-budget endpoint at the same consumed-world count.
func TestProgressiveStreamEndToEnd(t *testing.T) {
	g := e2eGraph(t, 64, 3)
	ts := startServer(t, g, server.Options{})

	frames, errEvent := streamFrames(t, ts.URL+"/v1/conn", progressiveConnBody())
	if errEvent != nil {
		t.Fatalf("stream errored: %v", errEvent)
	}
	last := checkRefinement(t, frames, 4096)
	worlds := int(last["worlds"].(float64))

	var fixed struct {
		Estimates [][]float64 `json:"estimates"`
	}
	if code, raw := postJSON(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "g", "centers": []int{0, 21}, "targets": []int{1, 20, 36},
		"samples": worlds,
	}, &fixed); code != 200 {
		t.Fatalf("fixed query: code %d: %s", code, raw)
	}
	gotJSON, _ := json.Marshal(last["estimates"])
	wantJSON, _ := json.Marshal(fixed.Estimates)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("final frame != fixed budget at %d worlds:\n%s\nvs\n%s", worlds, gotJSON, wantJSON)
	}
}

// TestProgressiveStreamShardedMatchesLocal runs the identical adaptive
// stream against an unsharded daemon and a 2-worker coordinator: the
// refinement sequences — every frame, not just the final one — must be
// byte-identical, because adaptive rounds ride the same deterministic
// world stream no matter where tallies are computed.
func TestProgressiveStreamShardedMatchesLocal(t *testing.T) {
	g := e2eGraph(t, 64, 3)
	plain := startServer(t, g, server.Options{})
	sharded := startServer(t, g, server.Options{Shards: startWorkers(t, g, 2)})

	plainFrames, err1 := streamFrames(t, plain.URL+"/v1/conn", progressiveConnBody())
	shardFrames, err2 := streamFrames(t, sharded.URL+"/v1/conn", progressiveConnBody())
	if err1 != nil || err2 != nil {
		t.Fatalf("stream errored: plain=%v sharded=%v", err1, err2)
	}
	checkRefinement(t, plainFrames, 4096)
	if len(plainFrames) != len(shardFrames) {
		t.Fatalf("frame counts differ: %d local vs %d sharded", len(plainFrames), len(shardFrames))
	}
	for i := range plainFrames {
		a, _ := json.Marshal(plainFrames[i])
		b, _ := json.Marshal(shardFrames[i])
		if string(a) != string(b) {
			t.Fatalf("frame %d differs:\n%s\nvs\n%s", i, a, b)
		}
	}
}
