// Package knn implements k-nearest-neighbor queries on uncertain graphs
// under the probabilistic distance measures of Potamias, Bonchi, Gionis
// and Kollios, "k-nearest neighbors in uncertain graphs" (VLDB 2010) —
// reference [29] of the paper under reproduction, which introduced the
// uncertain-graph model the clustering algorithms build on.
//
// For a source s and node v, the hop-distance d(s, v) is a random variable
// over possible worlds (taking value +inf when disconnected). Because its
// expectation is infinite whenever disconnection has positive probability,
// [29] ranks nodes by distribution summaries instead:
//
//   - Median-Distance: the smallest d whose cumulative probability reaches
//     1/2 (more generally any quantile);
//   - Majority-Distance: the most probable finite distance;
//   - Expected-Reliable-Distance: the expected distance conditioned on
//     connectivity, penalized implicitly by the reliability;
//   - Reliability: Pr(s ~ v) itself, the measure the clustering paper
//     adopts.
//
// As [29] observes (and the clustering paper reiterates), these distances
// do not satisfy the triangle inequality — the observation that motivates
// the connection-probability metric of Theorem 1.
package knn

import (
	"context"
	"math"
	"sort"

	"ucgraph/internal/graph"
	"ucgraph/internal/worldstore"
)

// Infinite marks an unreachable distance in a world.
const Infinite int32 = math.MaxInt32

// DistanceDistribution holds, for one source, the empirical hop-distance
// distribution of every node over r sampled worlds.
type DistanceDistribution struct {
	Source graph.NodeID
	R      int
	// Hist[v] maps finite hop distances to world counts; worlds where v is
	// unreachable from the source are counted in Unreachable[v].
	Hist        []map[int32]int
	Unreachable []int
}

// Sample computes the hop-distance distribution from src over the first r
// worlds of the seeded stream, routed through the shared world store for
// (g, seed): the worlds are the same ones any conn.MonteCarlo estimator or
// reliability metric built from that pair observes.
func Sample(g *graph.Uncertain, src graph.NodeID, seed uint64, r int) *DistanceDistribution {
	return SampleStore(worldstore.Shared(g, seed), src, r)
}

// SampleCtx is Sample with cooperative cancellation (see SampleStoreCtx).
func SampleCtx(ctx context.Context, g *graph.Uncertain, src graph.NodeID, seed uint64, r int) (*DistanceDistribution, error) {
	return SampleStoreCtx(ctx, worldstore.Shared(g, seed), src, r)
}

// SampleStore computes the hop-distance distribution from src over the
// first r worlds of ws. Hop distances need per-world BFS, so the sampling
// runs on the store's implicit world view rather than its label blocks.
func SampleStore(ws *worldstore.Store, src graph.NodeID, r int) *DistanceDistribution {
	dd, _ := SampleStoreCtx(context.Background(), ws, src, r)
	return dd
}

// SampleStoreCtx is SampleStore with cooperative cancellation: ctx is
// checked between per-world BFS traversals, and a cancelled run returns
// ctx's error with no distribution. A nil-error run is bit-identical to
// SampleStore.
func SampleStoreCtx(ctx context.Context, ws *worldstore.Store, src graph.NodeID, r int) (*DistanceDistribution, error) {
	return SampleRangeCtx(ctx, ws, src, 0, r)
}

// SampleRangeCtx computes the hop-distance distribution from src over the
// world range [lo, hi) of ws — the partial tally one shard worker
// contributes when the distribution is computed distributed. The returned
// distribution has R = hi - lo; distributions over disjoint ranges of the
// same stream merge with Merge into exactly the distribution a single
// scan of the union would have produced, because every field is an
// order-free integer sum over worlds.
func SampleRangeCtx(ctx context.Context, ws *worldstore.Store, src graph.NodeID, lo, hi int) (*DistanceDistribution, error) {
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	g := ws.Graph()
	n := g.NumNodes()
	dd := &DistanceDistribution{
		Source:      src,
		R:           hi - lo,
		Hist:        make([]map[int32]int, n),
		Unreachable: make([]int, n),
	}
	for v := range dd.Hist {
		dd.Hist[v] = make(map[int32]int, 8)
	}
	ws.Grow(hi)
	seen := make([]uint32, n)
	queue := make([]graph.NodeID, 0, n)
	reached := make([]bool, n)
	for w := lo; w < hi; w++ {
		if (w-lo)%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		world := ws.World(w)
		for v := range reached {
			reached[v] = false
		}
		world.BFSWithin(src, -1, seen, uint32(w-lo+1), queue, func(v graph.NodeID, depth int32) {
			dd.Hist[v][depth]++
			reached[v] = true
		})
		for v := 0; v < n; v++ {
			if !reached[v] {
				dd.Unreachable[v]++
			}
		}
	}
	return dd, nil
}

// Merge folds other — a distribution of the same source over a disjoint
// world range of the same stream — into dd, summing histogram counts,
// unreachable counts and the world totals. Because a distribution is a
// pure integer tally per world, merging partial tallies in any order
// yields the same distribution as one scan over the combined range; this
// is the gather step of the sharded deployment.
func (dd *DistanceDistribution) Merge(other *DistanceDistribution) {
	dd.R += other.R
	for v := range dd.Hist {
		for d, c := range other.Hist[v] {
			dd.Hist[v][d] += c
		}
		dd.Unreachable[v] += other.Unreachable[v]
	}
}

// Reliability returns the fraction of worlds where v was reachable:
// the Monte Carlo estimate of Pr(s ~ v).
func (dd *DistanceDistribution) Reliability(v graph.NodeID) float64 {
	return 1 - float64(dd.Unreachable[v])/float64(dd.R)
}

// Median returns the median hop distance of v (the 0.5-quantile of the
// distance distribution, with +inf mass included), or Infinite if v is
// disconnected in at least half the worlds.
func (dd *DistanceDistribution) Median(v graph.NodeID) int32 {
	return dd.Quantile(v, 0.5)
}

// Quantile returns the smallest distance d such that
// Pr(dist(s,v) <= d) >= phi, or Infinite if no finite distance reaches the
// quantile.
func (dd *DistanceDistribution) Quantile(v graph.NodeID, phi float64) int32 {
	need := phi * float64(dd.R)
	ds := make([]int32, 0, len(dd.Hist[v]))
	for d := range dd.Hist[v] {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	cum := 0
	for _, d := range ds {
		cum += dd.Hist[v][d]
		if float64(cum) >= need-1e-9 {
			return d
		}
	}
	return Infinite
}

// Majority returns the most probable finite hop distance of v (ties to the
// smaller distance), or Infinite if v was never reached.
func (dd *DistanceDistribution) Majority(v graph.NodeID) int32 {
	best, bestCount := Infinite, 0
	ds := make([]int32, 0, len(dd.Hist[v]))
	for d := range dd.Hist[v] {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	for _, d := range ds {
		if c := dd.Hist[v][d]; c > bestCount {
			best, bestCount = d, c
		}
	}
	return best
}

// ExpectedReliable returns the expected hop distance of v conditioned on
// reachability, and the reliability itself. It returns (+inf, 0) for a
// node never reached.
func (dd *DistanceDistribution) ExpectedReliable(v graph.NodeID) (dist float64, reliability float64) {
	reached := dd.R - dd.Unreachable[v]
	if reached == 0 {
		return math.Inf(1), 0
	}
	sum := 0.0
	for d, c := range dd.Hist[v] {
		sum += float64(d) * float64(c)
	}
	return sum / float64(reached), float64(reached) / float64(dd.R)
}

// Measure selects a node-ranking criterion for KNN queries.
type Measure int

const (
	// MedianDistance ranks by the median hop distance (ties by
	// reliability, then node ID).
	MedianDistance Measure = iota
	// MajorityDistance ranks by the most probable finite distance.
	MajorityDistance
	// ExpectedReliableDistance ranks by expected distance conditioned on
	// connectivity, requiring reliability >= 1/2 as in [29].
	ExpectedReliableDistance
	// ByReliability ranks by Pr(s ~ v) descending — the measure aligned
	// with the clustering paper's objectives.
	ByReliability
)

// Neighbor is one ranked query answer.
type Neighbor struct {
	Node graph.NodeID
	// Distance is the measure value (Infinite for unbounded measures);
	// for ByReliability it is the median distance, reported for context.
	Distance int32
	// Reliability is the estimated Pr(s ~ v).
	Reliability float64
}

// KNN returns the k nodes closest to the distribution's source under the
// given measure, excluding the source itself. Fewer than k neighbors are
// returned when the rest of the graph is unreachable in every sampled
// world (or fails the measure's reliability requirement).
func (dd *DistanceDistribution) KNN(k int, m Measure) []Neighbor {
	n := len(dd.Hist)
	cands := make([]Neighbor, 0, n-1)
	for v := 0; v < n; v++ {
		if graph.NodeID(v) == dd.Source {
			continue
		}
		rel := dd.Reliability(graph.NodeID(v))
		if rel == 0 {
			continue
		}
		var dist int32
		switch m {
		case MedianDistance:
			dist = dd.Median(graph.NodeID(v))
			if dist == Infinite {
				continue
			}
		case MajorityDistance:
			dist = dd.Majority(graph.NodeID(v))
			if dist == Infinite {
				continue
			}
		case ExpectedReliableDistance:
			ed, rel2 := dd.ExpectedReliable(graph.NodeID(v))
			if rel2 < 0.5 {
				continue
			}
			dist = int32(math.Round(ed))
		case ByReliability:
			dist = dd.Median(graph.NodeID(v))
		}
		cands = append(cands, Neighbor{Node: graph.NodeID(v), Distance: dist, Reliability: rel})
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if m == ByReliability {
			if a.Reliability != b.Reliability {
				return a.Reliability > b.Reliability
			}
			return a.Node < b.Node
		}
		if a.Distance != b.Distance {
			return a.Distance < b.Distance
		}
		if a.Reliability != b.Reliability {
			return a.Reliability > b.Reliability
		}
		return a.Node < b.Node
	})
	if k < len(cands) {
		cands = cands[:k]
	}
	return cands
}
