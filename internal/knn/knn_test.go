package knn

import (
	"math"
	"testing"

	"ucgraph/internal/graph"
)

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Uncertain {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pathGraph(t *testing.T, n int, p float64) *graph.Uncertain {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1), P: p})
	}
	return mustGraph(t, n, edges)
}

func TestCertainGraphDistancesAreBFS(t *testing.T) {
	g := pathGraph(t, 6, 1.0)
	dd := Sample(g, 0, 1, 100)
	for v := int32(0); v < 6; v++ {
		if got := dd.Median(v); got != v {
			t.Fatalf("median distance to %d = %d, want %d", v, got, v)
		}
		if got := dd.Majority(v); got != v {
			t.Fatalf("majority distance to %d = %d, want %d", v, got, v)
		}
		ed, rel := dd.ExpectedReliable(v)
		if math.Abs(ed-float64(v)) > 1e-12 || rel != 1 {
			t.Fatalf("expected-reliable to %d = (%v, %v)", v, ed, rel)
		}
		if dd.Reliability(v) != 1 {
			t.Fatalf("reliability to %d = %v, want 1", v, dd.Reliability(v))
		}
	}
}

func TestReliabilityMatchesPathProduct(t *testing.T) {
	g := pathGraph(t, 4, 0.7)
	const r = 30000
	dd := Sample(g, 0, 7, r)
	for v, want := range []float64{1, 0.7, 0.49, 0.343} {
		got := dd.Reliability(graph.NodeID(v))
		sigma := math.Sqrt(want*(1-want)/r) + 1e-9
		if math.Abs(got-want) > 6*sigma {
			t.Fatalf("reliability to %d = %v, want ~%v", v, got, want)
		}
	}
}

func TestMedianVsMajorityDiverge(t *testing.T) {
	// Node 2 is reachable from 0 either directly (p = 0.4, distance 1) or
	// via node 1 (both p = 0.9, distance 2). Finite-distance masses:
	// d=1 with prob 0.4; d=2 with prob 0.81*(0.6) = 0.486. The majority
	// finite distance is 2; the median (cumulative >= 0.5 including
	// unreachable mass) is also 2 here (0.4 + 0.486 = 0.886 >= 0.5 at d=2).
	// A cleaner median check: quantile 0.4 is distance 1.
	g := mustGraph(t, 3, []graph.Edge{
		{U: 0, V: 2, P: 0.4}, {U: 0, V: 1, P: 0.9}, {U: 1, V: 2, P: 0.9},
	})
	const r = 40000
	dd := Sample(g, 0, 3, r)
	if got := dd.Majority(2); got != 2 {
		t.Fatalf("majority distance = %d, want 2", got)
	}
	if got := dd.Quantile(2, 0.35); got != 1 {
		t.Fatalf("0.35-quantile = %d, want 1", got)
	}
	if got := dd.Median(2); got != 2 {
		t.Fatalf("median = %d, want 2", got)
	}
}

func TestMedianInfiniteWhenMostlyDisconnected(t *testing.T) {
	g := pathGraph(t, 2, 0.2) // connected in only 20% of worlds
	dd := Sample(g, 0, 9, 20000)
	if got := dd.Median(1); got != Infinite {
		t.Fatalf("median = %d, want Infinite (reliability 0.2)", got)
	}
	if got := dd.Quantile(1, 0.1); got != 1 {
		t.Fatalf("0.1-quantile = %d, want 1", got)
	}
}

func TestKNNCertainPath(t *testing.T) {
	g := pathGraph(t, 7, 1.0)
	dd := Sample(g, 3, 1, 50)
	nb := dd.KNN(2, MedianDistance)
	if len(nb) != 2 {
		t.Fatalf("got %d neighbors, want 2", len(nb))
	}
	// Nodes 2 and 4 are at distance 1.
	got := map[graph.NodeID]bool{nb[0].Node: true, nb[1].Node: true}
	if !got[2] || !got[4] {
		t.Fatalf("2-NN of node 3 = %v, want {2,4}", nb)
	}
}

func TestKNNByReliabilityPrefersStrongPaths(t *testing.T) {
	// From 0: node 1 via p=0.95; node 2 via a 0.5 direct edge. Node 1 is
	// more reliable and must rank first even though both are 1 hop.
	g := mustGraph(t, 3, []graph.Edge{
		{U: 0, V: 1, P: 0.95}, {U: 0, V: 2, P: 0.5},
	})
	dd := Sample(g, 0, 5, 20000)
	nb := dd.KNN(2, ByReliability)
	if nb[0].Node != 1 || nb[1].Node != 2 {
		t.Fatalf("reliability ranking = %v, want node 1 first", nb)
	}
	if nb[0].Reliability < nb[1].Reliability {
		t.Fatal("ranking not by descending reliability")
	}
}

func TestKNNExcludesUnreachable(t *testing.T) {
	g := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1, P: 0.9}, {U: 2, V: 3, P: 0.9}})
	dd := Sample(g, 0, 11, 500)
	nb := dd.KNN(10, MedianDistance)
	if len(nb) != 1 || nb[0].Node != 1 {
		t.Fatalf("KNN across components = %v, want just node 1", nb)
	}
}

func TestKNNExpectedReliableRequiresHalf(t *testing.T) {
	// Node 2 reachable only via a 0.3 edge: reliability < 0.5, so the
	// ExpectedReliableDistance measure must drop it.
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1, P: 0.9}, {U: 1, V: 2, P: 0.3}})
	dd := Sample(g, 0, 13, 20000)
	nb := dd.KNN(5, ExpectedReliableDistance)
	for _, x := range nb {
		if x.Node == 2 {
			t.Fatalf("node with reliability %v included by ERD", dd.Reliability(2))
		}
	}
}

func TestKNNDeterministicPerSeed(t *testing.T) {
	g := pathGraph(t, 10, 0.6)
	a := Sample(g, 0, 21, 500).KNN(5, MedianDistance)
	b := Sample(g, 0, 21, 500).KNN(5, MedianDistance)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different rankings")
		}
	}
}

func TestKNNTriangleInequalityCounterexample(t *testing.T) {
	// Reproduce the [29] observation quoted by the paper: median distance
	// violates the triangle inequality. Take a 2-path 0-1-2 with p = 0.6
	// on each edge: Median(0,1) = Median(1,2) = 1, but Pr(0~2) = 0.36 <
	// 0.5, so Median(0,2) = Infinite > 1 + 1.
	g := pathGraph(t, 3, 0.6)
	const r = 20000
	d01 := Sample(g, 0, 31, r).Median(1)
	d12 := Sample(g, 1, 31, r).Median(2)
	d02 := Sample(g, 0, 31, r).Median(2)
	if d01 != 1 || d12 != 1 {
		t.Fatalf("adjacent medians = %d, %d, want 1, 1", d01, d12)
	}
	if d02 != Infinite {
		t.Fatalf("Median(0,2) = %d, want Infinite (triangle inequality violated)", d02)
	}
}
