// PPI protein-complex prediction (the Table 2 scenario of the paper).
//
// A Krogan-like protein-protein interaction network is clustered with
// depth-limited MCP and ACP: restricting connection probabilities to short
// paths captures the biology that proteins of the same complex are both
// reliably connected and topologically close. Predicted co-complex pairs
// (same cluster) are scored against a curated MIPS-like ground truth, and
// compared with the MCL and pKwikCluster (KPT) baselines.
//
// Run with: go run ./examples/ppi
package main

import (
	"fmt"
	"log"

	"ucgraph"
)

func main() {
	ds, err := ucgraph.SyntheticKrogan(1)
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	fmt.Printf("Krogan-like PPI network: %d proteins, %d interactions\n",
		g.NumNodes(), g.NumEdges())
	pairs := 0
	for _, cx := range ds.Curated {
		pairs += len(cx) * (len(cx) - 1) / 2
	}
	fmt.Printf("curated ground truth: %d complexes, %d protein pairs\n\n",
		len(ds.Curated), pairs)

	// Granularity target: MCL's cluster count, as in the original study.
	mclRes := ucgraph.MCL(g, ucgraph.MCLOptions{Inflation: 2.0})
	k := mclRes.Clustering.K()
	fmt.Printf("MCL reference clustering: %d clusters\n\n", k)

	fmt.Printf("%-6s %6s %8s %8s %10s\n", "algo", "depth", "TPR", "FPR", "precision")
	report := func(algo string, depth int, cl *ucgraph.Clustering) {
		conf := ucgraph.PairConfusion(cl, ds.Curated)
		d := "-"
		if depth > 0 {
			d = fmt.Sprintf("%d", depth)
		}
		fmt.Printf("%-6s %6s %8.3f %8.3f %10.3f\n", algo, d, conf.TPR(), conf.FPR(), conf.Precision())
	}

	for _, d := range []int{2, 3, 4} {
		mcpCl, _, err := ucgraph.MCP(g, k, ucgraph.Options{Seed: 1, Depth: d})
		if err != nil {
			log.Fatal(err)
		}
		report("mcp", d, mcpCl)

		acpCl, _, err := ucgraph.ACP(g, k, ucgraph.Options{Seed: 1, Depth: d})
		if err != nil {
			log.Fatal(err)
		}
		report("acp", d, acpCl)
	}
	report("mcl", 0, mclRes.Clustering)
	report("kpt", 0, ucgraph.KPT(g, 1))

	fmt.Println("\nSmall depths keep false positives low; larger depths trade")
	fmt.Println("precision for recall, as in Table 2 of the paper.")
}
