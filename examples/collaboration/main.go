// Collaboration-network clustering (the paper's DBLP scenario).
//
// A DBLP-like co-authorship graph is generated where the probability of an
// edge reflects how often two authors collaborated (p = 1 - exp(-x/2) for
// x joint papers). ACP clusters it into research communities whose members
// are, on average, reliably connected to the community's central author;
// the run is compared against MCL and the shortest-path k-center baseline
// (GMM) on the probabilistic quality metrics.
//
// Run with: go run ./examples/collaboration
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"ucgraph"
)

func main() {
	ds, err := ucgraph.SyntheticDBLP(ucgraph.DBLPConfig{
		Authors:         4000,
		PapersPerAuthor: 1.45,
		CommunitySize:   55,
		CrossCommunity:  0.12,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	fmt.Printf("DBLP-like collaboration graph: %d authors, %d co-author edges\n\n",
		g.NumNodes(), g.NumEdges())

	k := g.NumNodes() / 50 // ~community-sized clusters

	type result struct {
		name   string
		cl     *ucgraph.Clustering
		millis int64
	}
	var results []result

	t0 := time.Now()
	acpCl, _, err := ucgraph.ACP(g, k, ucgraph.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, result{"acp", acpCl, time.Since(t0).Milliseconds()})

	t0 = time.Now()
	mcpCl, _, err := ucgraph.MCP(g, k, ucgraph.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, result{"mcp", mcpCl, time.Since(t0).Milliseconds()})

	t0 = time.Now()
	gmmCl, err := ucgraph.GMM(g, k, 7)
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, result{"gmm", gmmCl, time.Since(t0).Milliseconds()})

	t0 = time.Now()
	mclRes := ucgraph.MCL(g, ucgraph.MCLOptions{Inflation: 1.3})
	results = append(results, result{"mcl", mclRes.Clustering, time.Since(t0).Milliseconds()})

	fmt.Printf("%-5s %6s %8s %8s %8s %8s %9s\n",
		"algo", "k", "p_min", "p_avg", "inner", "outer", "time(ms)")
	for _, r := range results {
		pmin := ucgraph.MinProb(g, r.cl, 99, 192)
		pavg := ucgraph.AvgProb(g, r.cl, 99, 192)
		inner, outer := ucgraph.AVPR(g, r.cl, 99, 192)
		fmt.Printf("%-5s %6d %8.3f %8.3f %8.3f %8.3f %9d\n",
			r.name, r.cl.K(), pmin, pavg, inner, outer, r.millis)
	}

	// Show the three largest ACP communities.
	clusters := acpCl.Clusters()
	sort.Slice(clusters, func(i, j int) bool { return len(clusters[i]) > len(clusters[j]) })
	fmt.Println("\nlargest ACP communities:")
	for i := 0; i < 3 && i < len(clusters); i++ {
		size := len(clusters[i])
		sample := clusters[i]
		if size > 8 {
			sample = sample[:8]
		}
		fmt.Printf("  #%d: %d authors, e.g. %v\n", i+1, size, sample)
	}
}
