// Query toolkit tour: k-nearest neighbors under probabilistic distances,
// influence maximization, representative worlds and reliability
// statistics on one uncertain graph.
//
// The graph is a Gavin-like PPI network (mostly low-probability edges),
// where the difference between probability-aware and topology-only
// reasoning is largest.
//
// Run with: go run ./examples/queries
package main

import (
	"fmt"
	"log"

	"ucgraph"
)

func main() {
	ds, err := ucgraph.SyntheticGavin(3)
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	fmt.Printf("Gavin-like PPI network: %d proteins, %d interactions\n\n",
		g.NumNodes(), g.NumEdges())

	// --- Reliability profile -------------------------------------------
	fmt.Printf("expected components per world: %.1f (of %d nodes)\n",
		ucgraph.ExpectedComponents(g, 1, 300), g.NumNodes())
	fmt.Printf("all-terminal reliability:      %.4f\n",
		ucgraph.AllTerminalReliability(g, 1, 300))

	// --- k-NN under probabilistic distances ----------------------------
	src := ucgraph.NodeID(0)
	dd := ucgraph.SampleDistances(g, src, 7, 2000)
	fmt.Printf("\n5 nearest neighbors of protein %d:\n", src)
	fmt.Printf("  %-22s %s\n", "by median distance", "by reliability")
	med := dd.KNN(5, ucgraph.MedianDistance)
	rel := dd.KNN(5, ucgraph.ByReliability)
	for i := 0; i < 5; i++ {
		left, right := "-", "-"
		if i < len(med) {
			left = fmt.Sprintf("%4d (d=%d, rel %.2f)", med[i].Node, med[i].Distance, med[i].Reliability)
		}
		if i < len(rel) {
			right = fmt.Sprintf("%4d (rel %.2f)", rel[i].Node, rel[i].Reliability)
		}
		fmt.Printf("  %-22s %s\n", left, right)
	}

	// --- Influence maximization ----------------------------------------
	res, err := ucgraph.MaximizeInfluence(g, 5, 11, 300)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-5 influence seeds (Independent Cascade):\n")
	for i, s := range res.Seeds {
		fmt.Printf("  seed %d: node %4d, cumulative expected spread %.1f\n",
			i+1, s, res.Spread[i])
	}
	fmt.Printf("  (%d sigma evaluations thanks to CELF, vs %d naive)\n",
		res.Evaluations, g.NumNodes()*len(res.Seeds))

	// --- Representative worlds -----------------------------------------
	mp, err := ucgraph.MostProbableWorld(g)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := ucgraph.RepresentativeWorld(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrepresentative instances (original has %d edges, all uncertain):\n", g.NumEdges())
	fmt.Printf("  most-probable world:   %5d edges, degree discrepancy %.0f\n",
		mp.NumEdges(), ucgraph.DegreeDiscrepancy(g, mp))
	fmt.Printf("  expected-degree world: %5d edges, degree discrepancy %.0f\n",
		rep.NumEdges(), ucgraph.DegreeDiscrepancy(g, rep))
	fmt.Println("\nOn a low-probability network the most-probable world loses most of")
	fmt.Println("the structure; the expected-degree instance preserves it.")
}
