package main

// Example runs the query-toolkit tour end to end and pins its exact
// output under `go test ./examples/...` (the CI docs job), so the printed
// walkthrough cannot rot. Pinning Monte Carlo output is sound here: the
// library guarantees bit-identical estimates for a fixed seed.
func Example() {
	main()
	// Output:
	// Gavin-like PPI network: 1760 proteins, 7600 interactions
	//
	// expected components per world: 336.8 (of 1760 nodes)
	// all-terminal reliability:      0.0000
	//
	// 5 nearest neighbors of protein 0:
	//   by median distance     by reliability
	//      3 (d=3, rel 0.69)    172 (rel 0.69)
	//      5 (d=5, rel 0.69)    181 (rel 0.69)
	//      6 (d=5, rel 0.68)    192 (rel 0.69)
	//      9 (d=5, rel 0.68)    340 (rel 0.69)
	//     10 (d=5, rel 0.67)    349 (rel 0.69)
	//
	// top-5 influence seeds (Independent Cascade):
	//   seed 1: node 1028, cumulative expected spread 1366.4
	//   seed 2: node 1342, cumulative expected spread 1368.2
	//   seed 3: node 1336, cumulative expected spread 1369.9
	//   seed 4: node 1524, cumulative expected spread 1371.6
	//   seed 5: node 1527, cumulative expected spread 1373.2
	//   (3522 sigma evaluations thanks to CELF, vs 8800 naive)
	//
	// representative instances (original has 7600 edges, all uncertain):
	//   most-probable world:     955 edges, degree discrepancy 2403
	//   expected-degree world:  2165 edges, degree discrepancy 510
	//
	// On a low-probability network the most-probable world loses most of
	// the structure; the expected-degree instance preserves it.
}
