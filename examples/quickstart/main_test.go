package main

// Example runs the quickstart end to end and pins its exact output:
// `go test ./examples/...` (part of the CI docs job) fails if the printed
// walkthrough ever drifts from what the code does. The estimates are safe
// to pin — same seed means bit-identical results, per the library's
// determinism contract (docs/ARCHITECTURE.md).
func Example() {
	main()
	// Output:
	// graph: 8 nodes, 13 uncertain edges
	// Pr(0 ~ 3) = 0.998 (same blob)
	// Pr(0 ~ 7) = 0.101 (across the bridge)
	//
	// MCP found 2 clusters (final guess q = 0.900, 1 min-partial runs)
	//   cluster 0 (center 2): [0 1 2 3]
	//   cluster 1 (center 6): [4 5 6 7]
	//   p_min = 0.998   p_avg = 0.999
	//
	// ACP clustering: inner-AVPR = 0.998, outer-AVPR = 0.096
}
