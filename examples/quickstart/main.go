// Quickstart: build a small uncertain graph, cluster it with MCP and ACP,
// and inspect the result.
//
// The graph models two teams of collaborators connected by one unreliable
// link; a 2-clustering should recover the teams.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ucgraph"
)

func main() {
	// Two 4-node blobs (high-probability edges) bridged by a weak edge.
	b := ucgraph.NewBuilder(8)
	addBlob := func(base ucgraph.NodeID) {
		for i := ucgraph.NodeID(0); i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if err := b.AddEdge(base+i, base+j, 0.9); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	addBlob(0)
	addBlob(4)
	if err := b.AddEdge(0, 4, 0.1); err != nil {
		log.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d uncertain edges\n", g.NumNodes(), g.NumEdges())

	// Pairwise connection probability: inside a blob vs across the bridge.
	inside := ucgraph.ConnectionProbability(g, 0, 3, 1, 20000)
	across := ucgraph.ConnectionProbability(g, 0, 7, 1, 20000)
	fmt.Printf("Pr(0 ~ 3) = %.3f (same blob)\n", inside)
	fmt.Printf("Pr(0 ~ 7) = %.3f (across the bridge)\n", across)

	// MCP: maximize the minimum connection probability to a center.
	cl, stats, err := ucgraph.MCP(g, 2, ucgraph.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMCP found %d clusters (final guess q = %.3f, %d min-partial runs)\n",
		cl.K(), stats.FinalQ, stats.Invocations)
	for i, members := range cl.Clusters() {
		fmt.Printf("  cluster %d (center %d): %v\n", i, cl.Centers[i], members)
	}
	fmt.Printf("  p_min = %.3f   p_avg = %.3f\n",
		ucgraph.MinProb(g, cl, 7, 2000), ucgraph.AvgProb(g, cl, 7, 2000))

	// ACP: maximize the average connection probability instead.
	acl, _, err := ucgraph.ACP(g, 2, ucgraph.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	inner, outer := ucgraph.AVPR(g, acl, 7, 2000)
	fmt.Printf("\nACP clustering: inner-AVPR = %.3f, outer-AVPR = %.3f\n", inner, outer)
}
