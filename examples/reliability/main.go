// Network-reliability analysis: most reliable sources and two-terminal
// reliability.
//
// Interpreting edge probabilities as the complements of failure
// probabilities, this example treats an uncertain graph as an unreliable
// communication network and answers two classical reliability questions
// with the library's primitives:
//
//  1. Two-terminal reliability — the probability that two given nodes can
//     communicate — via Monte Carlo estimation (exact computation is
//     #P-complete).
//  2. The "most reliable source" problem (a special case of the paper's
//     clustering problems with k = 1): which node maximizes the minimum /
//     average probability of reaching everyone else? MCP with k = 1
//     answers the min variant, ACP the average variant.
//
// Run with: go run ./examples/reliability
package main

import (
	"fmt"
	"log"

	"ucgraph"
)

func main() {
	// A two-tier network: a reliable ring core (0-3) with less reliable
	// access links to leaf routers (4-9).
	b := ucgraph.NewBuilder(10)
	type link struct {
		u, v ucgraph.NodeID
		p    float64
	}
	links := []link{
		{0, 1, 0.95}, {1, 2, 0.95}, {2, 3, 0.95}, {3, 0, 0.95}, // core ring
		{0, 4, 0.7}, {0, 5, 0.6}, // access links
		{1, 6, 0.8}, {2, 7, 0.5},
		{3, 8, 0.65}, {3, 9, 0.75},
		{4, 5, 0.4}, {8, 9, 0.3}, // redundant leaf links
	}
	for _, l := range links {
		if err := b.AddEdge(l.u, l.v, l.p); err != nil {
			log.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Two-terminal reliability between opposite leaves.
	const samples = 50000
	fmt.Println("two-terminal reliability (Monte Carlo, 50k worlds):")
	for _, pair := range [][2]ucgraph.NodeID{{4, 7}, {6, 9}, {0, 2}} {
		rel := ucgraph.ConnectionProbability(g, pair[0], pair[1], 1, samples)
		fmt.Printf("  Pr(%d ~ %d) = %.3f\n", pair[0], pair[1], rel)
	}

	// Most reliable source, min variant: MCP with k = 1. The single
	// center is the node whose worst-case reachability is best.
	// Alpha: -1 evaluates every candidate center per iteration — affordable
	// on a 10-node network and exact for the k = 1 source-placement case.
	mcpCl, stats, err := ucgraph.MCP(g, 1, ucgraph.Options{Seed: 3, Alpha: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmost reliable source (min criterion): node %d\n", mcpCl.Centers[0])
	fmt.Printf("  worst-case reachability >= %.3f (final guess q = %.3f)\n",
		mcpCl.MinProb(), stats.FinalQ)

	// Average variant: ACP with k = 1.
	acpCl, _, err := ucgraph.ACP(g, 1, ucgraph.Options{Seed: 3, Alpha: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("most reliable source (avg criterion): node %d\n", acpCl.Centers[0])
	fmt.Printf("  average reachability = %.3f\n", ucgraph.AvgProb(g, acpCl, 9, 20000))

	// Cross-check the min-variant center against every node by brute
	// force over estimated probabilities.
	est := ucgraph.NewEstimator(g, 11)
	bestNode, bestWorst := ucgraph.NodeID(-1), -1.0
	for u := 0; u < g.NumNodes(); u++ {
		probs := est.FromCenter(ucgraph.NodeID(u), ucgraph.Unlimited, 20000)
		worst := 1.0
		for _, p := range probs {
			if p < worst {
				worst = p
			}
		}
		if worst > bestWorst {
			bestWorst, bestNode = worst, ucgraph.NodeID(u)
		}
	}
	fmt.Printf("\nbrute-force optimum: node %d with worst-case reachability %.3f\n",
		bestNode, bestWorst)
	fmt.Println("(MCP is an approximation algorithm: its source is guaranteed to be")
	fmt.Println(" within the Theorem 3 factor of this optimum, and usually close.)")
}
