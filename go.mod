module ucgraph

go 1.24
